// Cluster-memoization tests (stream/cluster_log.h + the LoomPartitioner
// memo path + Restreamer wiring):
//
//  * ClusterLog / ClusterMemo / GroupPermByUnits container semantics and the
//    order-independent fingerprint;
//  * pass one is bit-identical with logging (and the whole memoize_clusters
//    feature) on vs off, for both bench graph families — recording must be
//    a pure observer;
//  * a memoized multi-pass restream replays every vertex, actually recalls
//    units, and lands within the documented edge-cut tolerance of the
//    non-memoized run;
//  * the invalidation gate: a fully-perturbed replay invalidates every unit
//    and is then *bit-identical* to the plain pipeline on the same
//    arrivals, and a single perturbed label invalidates exactly its unit
//    while everything else stays memoized.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/hash.h"
#include "core/loom.h"
#include "graph/generators.h"
#include "metrics/metrics.h"
#include "restream/restreamer.h"
#include "stream/cluster_log.h"
#include "stream/stream.h"
#include "workload/query_builders.h"

namespace loom {
namespace {

uint64_t AssignmentHash(const PartitionAssignment& a, size_t n) {
  uint64_t h = 0xcbf29ce484222325ull;
  for (VertexId v = 0; v < n; ++v) {
    h = HashCombine(h, static_cast<uint64_t>(a.PartOf(v) + 1));
  }
  return h;
}

TEST(ClusterLogTest, RecordsUnitsInOrder) {
  ClusterLog log;
  log.Reset(/*fingerprints_complete=*/true);
  EXPECT_EQ(log.NumUnits(), 0u);

  log.AddMember(5, 11);
  log.AddMember(3, 22);
  log.CommitUnit();
  log.CommitUnit();  // empty commit: no-op
  log.AddMember(9, 33);
  log.CommitUnit();

  ASSERT_EQ(log.NumUnits(), 2u);
  EXPECT_EQ(log.NumMembers(), 3u);
  ASSERT_EQ(log.MembersOf(0).size(), 2u);
  EXPECT_EQ(log.MembersOf(0)[0], 5u);
  EXPECT_EQ(log.MembersOf(0)[1], 3u);
  ASSERT_EQ(log.FingerprintsOf(0).size(), 2u);
  EXPECT_EQ(log.FingerprintsOf(0)[1], 22u);
  ASSERT_EQ(log.MembersOf(1).size(), 1u);
  EXPECT_EQ(log.MembersOf(1)[0], 9u);
  EXPECT_EQ(log.IdBound(), 10u);

  // Without complete fingerprints the per-member hashes are not stored.
  log.Reset(/*fingerprints_complete=*/false);
  log.AddMember(1, 44);
  log.CommitUnit();
  EXPECT_FALSE(log.fingerprints_complete());
  EXPECT_TRUE(log.FingerprintsOf(0).empty());
}

TEST(ClusterLogTest, FingerprintIsOrderIndependentAndStateSensitive) {
  const std::vector<VertexId> abc = {7, 2, 9};
  const std::vector<VertexId> cab = {9, 7, 2};
  const std::vector<VertexId> abd = {7, 2, 8};
  EXPECT_EQ(ClusterLog::Fingerprint(1, abc), ClusterLog::Fingerprint(1, cab));
  EXPECT_NE(ClusterLog::Fingerprint(1, abc), ClusterLog::Fingerprint(2, abc));
  EXPECT_NE(ClusterLog::Fingerprint(1, abc), ClusterLog::Fingerprint(1, abd));
  // Never 0 — 0 is the "no fingerprint" sentinel.
  EXPECT_NE(ClusterLog::Fingerprint(0, {}), 0u);
}

TEST(ClusterMemoTest, UnitOfAndGroupPermHoistUnitsContiguously) {
  ClusterLog log;
  log.Reset(false);
  log.AddMember(4, 0);
  log.AddMember(1, 0);
  log.CommitUnit();  // unit 0: {4, 1}
  log.AddMember(6, 0);
  log.CommitUnit();  // unit 1: {6}
  const ClusterMemo memo(&log);

  EXPECT_EQ(memo.UnitOf(4), 0);
  EXPECT_EQ(memo.UnitOf(1), 0);
  EXPECT_EQ(memo.UnitOf(6), 1);
  EXPECT_EQ(memo.UnitOf(0), -1);
  EXPECT_EQ(memo.UnitOf(999), -1);
  EXPECT_FALSE(memo.validate());

  // Unit 0 hoists to 4's position (recorded order 4,1); 6 stays a unit of
  // one; non-members keep relative order.
  const std::vector<VertexId> perm = {0, 1, 2, 6, 4, 5};
  const std::vector<VertexId> grouped = GroupPermByUnits(perm, memo);
  const std::vector<VertexId> expected = {0, 4, 1, 2, 6, 5};
  EXPECT_EQ(grouped, expected);

  // Always a permutation of the input.
  std::vector<VertexId> a = perm, b = grouped;
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  EXPECT_EQ(a, b);
}

// --- End-to-end fixtures: the two bench graph families, motif-planted so
// the cluster path is exercised. ---

struct MemoFixture {
  LabeledGraph graph;
  GraphStream stream;
  Workload workload;
  LoomOptions options;
};

MemoFixture MakeFixture(int family) {
  MemoFixture f;
  Rng rng(2026);
  f.graph = family == 0
                ? ErdosRenyiGnm(1500, 6000, LabelConfig{3, 0.2}, rng)
                : BarabasiAlbert(1500, 4, LabelConfig{3, 0.2}, rng);
  PlantMotifs(&f.graph, TriangleQuery(0, 1, 2), 40, rng,
              /*locality_span=*/16);
  f.stream = MakeStream(f.graph, StreamOrder::kRandom, rng);

  EXPECT_TRUE(f.workload.Add("tri", TriangleQuery(0, 1, 2), 1.0).ok());
  EXPECT_TRUE(f.workload.Add("ab", PathQuery({0, 1}), 1.0).ok());
  f.workload.Normalize();

  f.options.partitioner.k = 8;
  f.options.partitioner.num_vertices_hint = f.graph.NumVertices();
  f.options.partitioner.num_edges_hint = f.graph.NumEdges();
  f.options.partitioner.window_size = 64;
  f.options.matcher.frequency_threshold = 0.3;
  return f;
}

class MemoEquivalence : public ::testing::TestWithParam<int> {};

// Recording is a pure observer: a single pass with cluster logging on must
// produce the bit-identical assignment to one with it off.
TEST_P(MemoEquivalence, PassOneIsBitIdenticalWithLoggingOn) {
  const MemoFixture f = MakeFixture(GetParam());

  auto plain = Loom::Create(f.workload, f.options);
  ASSERT_TRUE(plain.ok());
  (*plain)->Partitioner().Run(f.stream);

  auto logged = Loom::Create(f.workload, f.options);
  ASSERT_TRUE(logged.ok());
  (*logged)->Partitioner().SetClusterLogging(true);
  (*logged)->Partitioner().Run(f.stream);

  EXPECT_EQ(
      AssignmentHash((*plain)->Partitioner().assignment(),
                     f.graph.NumVertices()),
      AssignmentHash((*logged)->Partitioner().assignment(),
                     f.graph.NumVertices()));
  // And the log is non-trivial: it recorded every assigned vertex.
  ASSERT_NE((*logged)->Partitioner().cluster_log(), nullptr);
  EXPECT_EQ((*logged)->Partitioner().cluster_log()->NumMembers(),
            f.graph.NumVertices());
}

// The full memoized restream: pass one bit-identical, later passes within
// the documented 0.1-cut-point tolerance of the non-memoized run, every
// vertex assigned, and units actually recalled.
TEST_P(MemoEquivalence, MemoizedRestreamMatchesNonMemoizedWithinTolerance) {
  const MemoFixture f = MakeFixture(GetParam());

  RestreamOptions on;
  on.num_passes = 3;
  on.order = RestreamOrder::kOriginal;
  RestreamOptions off = on;
  off.memoize_clusters = false;

  auto loom_on = Loom::Create(f.workload, f.options);
  auto loom_off = Loom::Create(f.workload, f.options);
  ASSERT_TRUE(loom_on.ok());
  ASSERT_TRUE(loom_off.ok());

  const Restreamer r_on(f.stream, on);
  const Restreamer r_off(f.stream, off);
  const RestreamResult res_on = r_on.Run(&(*loom_on)->Partitioner());
  const RestreamResult res_off = r_off.Run(&(*loom_off)->Partitioner());

  ASSERT_EQ(res_on.passes.size(), 3u);
  // Pass one never sees a memo: exactly equal.
  EXPECT_EQ(res_on.passes[0].edge_cut_fraction,
            res_off.passes[0].edge_cut_fraction);
  // Memoized replay passes: within 0.1 cut points of the non-memoized run.
  for (size_t p = 1; p < 3; ++p) {
    EXPECT_NEAR(res_on.passes[p].edge_cut_fraction,
                res_off.passes[p].edge_cut_fraction, 0.001)
        << "pass " << p + 1;
  }
  EXPECT_NEAR(res_on.edge_cut_fraction, res_off.edge_cut_fraction, 0.001);

  // Completeness and balance on the memoized result.
  EXPECT_EQ(res_on.assignment.NumAssigned(), f.graph.NumVertices());
  EXPECT_TRUE(AllAssigned(f.graph, res_on.assignment));

  // The memo path actually fired: the last pass recalled units covering
  // most of the stream (the partitioner holds last-pass stats).
  const LoomStats& stats = (*loom_on)->Partitioner().loom_stats();
  EXPECT_GT(stats.memo_units, 0u);
  EXPECT_GT(stats.memo_vertices, f.graph.NumVertices() / 2);
  // And the non-memoized run never touched the memo path.
  EXPECT_EQ((*loom_off)->Partitioner().loom_stats().memo_units, 0u);
}

// Builds the state a memoized pass three starts from: pass one (logged),
// then a memoized-and-logged pass two, returning the pass-two log (complete
// fingerprints), the pass-two assignment, and the grouped full-neighbourhood
// replay arrivals for pass three.
struct PassThreeSetup {
  ClusterLog log2;
  PartitionAssignment prior{1, 0};
  std::vector<VertexArrival> arrivals;
};

PassThreeSetup MakePassThreeSetup(const MemoFixture& f) {
  PassThreeSetup s;
  auto loom = Loom::Create(f.workload, f.options);
  EXPECT_TRUE(loom.ok());
  LoomPartitioner& p = (*loom)->Partitioner();

  const Restreamer restreamer(f.stream, RestreamOptions{});
  Rng rng(7);

  p.SetClusterLogging(true);
  p.BeginPass(nullptr);
  p.Run(f.stream);
  const ClusterLog log1 = *p.cluster_log();
  PartitionAssignment prior1 = p.assignment();

  // Pass two: memoized replay of the pass-one units, original order,
  // logging on — this log carries complete fingerprints.
  const GraphStream replay =
      restreamer.ReplayStream(RestreamOrder::kOriginal, prior1, rng);
  std::vector<VertexId> perm;
  for (const VertexArrival& a : replay.arrivals()) perm.push_back(a.vertex);
  const ClusterMemo memo1(&log1);
  perm = GroupPermByUnits(perm, memo1);

  std::vector<uint32_t> index_of(f.graph.NumVertices());
  for (uint32_t i = 0; i < replay.arrivals().size(); ++i) {
    index_of[replay.arrivals()[i].vertex] = i;
  }
  std::vector<VertexArrival> grouped;
  for (const VertexId v : perm) grouped.push_back(replay.arrivals()[index_of[v]]);
  const GraphStream grouped_stream{std::vector<VertexArrival>(grouped)};

  p.BeginPass(&prior1);
  p.SetClusterMemo(&memo1);
  p.Run(grouped_stream);
  p.ClearPrior();

  EXPECT_TRUE(p.cluster_log()->fingerprints_complete());
  s.log2 = *p.cluster_log();
  s.prior = p.assignment();
  s.arrivals = std::move(grouped);
  return s;
}

// Every label perturbed -> every recalled unit fails its fingerprint ->
// every arrival falls back to the pipeline: the memoized run must then be
// BIT-IDENTICAL to a plain (never-memoized) run over the same arrivals and
// prior. This pins the invalidation fallback end-to-end.
TEST_P(MemoEquivalence, FullyInvalidatedReplayEqualsPipelineBitForBit) {
  const MemoFixture f = MakeFixture(GetParam());
  PassThreeSetup s = MakePassThreeSetup(f);

  for (VertexArrival& a : s.arrivals) a.label = (a.label + 1) % 3;
  const GraphStream perturbed{std::vector<VertexArrival>(s.arrivals)};

  const ClusterMemo memo2(&s.log2);
  ASSERT_TRUE(memo2.validate());

  auto memoized = Loom::Create(f.workload, f.options);
  ASSERT_TRUE(memoized.ok());
  LoomPartitioner& pm = (*memoized)->Partitioner();
  pm.BeginPass(&s.prior);
  pm.SetClusterMemo(&memo2);
  pm.Run(perturbed);
  pm.ClearPrior();

  auto plain = Loom::Create(f.workload, f.options);
  ASSERT_TRUE(plain.ok());
  LoomPartitioner& pp = (*plain)->Partitioner();
  pp.BeginPass(&s.prior);
  pp.Run(perturbed);
  pp.ClearPrior();

  EXPECT_EQ(pm.loom_stats().memo_units, 0u);
  EXPECT_EQ(pm.loom_stats().memo_invalidated, s.log2.NumUnits());
  for (VertexId v = 0; v < f.graph.NumVertices(); ++v) {
    ASSERT_EQ(pm.assignment().PartOf(v), pp.assignment().PartOf(v))
        << "vertex " << v;
  }
}

// One perturbed label invalidates exactly its own unit; everything else
// stays memoized, the run is deterministic, and no vertex is dropped.
TEST_P(MemoEquivalence, SinglePerturbationInvalidatesExactlyItsUnit) {
  const MemoFixture f = MakeFixture(GetParam());
  PassThreeSetup s = MakePassThreeSetup(f);

  // Perturb one member of a multi-member unit.
  int32_t target_unit = -1;
  for (uint32_t u = 0; u < s.log2.NumUnits(); ++u) {
    if (s.log2.MembersOf(u).size() > 1) {
      target_unit = static_cast<int32_t>(u);
      break;
    }
  }
  ASSERT_GE(target_unit, 0) << "no multi-member unit recorded";
  const VertexId victim = s.log2.MembersOf(target_unit)[0];
  for (VertexArrival& a : s.arrivals) {
    if (a.vertex == victim) a.label = (a.label + 1) % 3;
  }
  const GraphStream perturbed{std::vector<VertexArrival>(s.arrivals)};
  const ClusterMemo memo2(&s.log2);

  const auto run_once = [&](LoomPartitioner& p) {
    p.BeginPass(&s.prior);
    p.SetClusterMemo(&memo2);
    p.Run(perturbed);
    p.ClearPrior();
  };

  auto a = Loom::Create(f.workload, f.options);
  auto b = Loom::Create(f.workload, f.options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  run_once((*a)->Partitioner());
  run_once((*b)->Partitioner());

  const LoomStats& stats = (*a)->Partitioner().loom_stats();
  EXPECT_EQ(stats.memo_invalidated, 1u);
  EXPECT_EQ(stats.memo_units, s.log2.NumUnits() - 1);
  EXPECT_EQ((*a)->Partitioner().assignment().NumAssigned(),
            f.graph.NumVertices());
  EXPECT_EQ(AssignmentHash((*a)->Partitioner().assignment(),
                           f.graph.NumVertices()),
            AssignmentHash((*b)->Partitioner().assignment(),
                           f.graph.NumVertices()));
}

INSTANTIATE_TEST_SUITE_P(Families, MemoEquivalence, ::testing::Values(0, 1));

}  // namespace
}  // namespace loom
