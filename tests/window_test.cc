// Tests for the sliding stream window.

#include <gtest/gtest.h>

#include "stream/window.h"

namespace loom {
namespace {

TEST(WindowTest, PushAndContains) {
  StreamWindow w(3);
  w.Push(10, 0, {});
  EXPECT_TRUE(w.Contains(10));
  EXPECT_FALSE(w.Contains(11));
  EXPECT_EQ(w.Size(), 1u);
  EXPECT_FALSE(w.Full());
}

TEST(WindowTest, FullAtCapacity) {
  StreamWindow w(2);
  w.Push(1, 0, {});
  w.Push(2, 0, {});
  EXPECT_TRUE(w.Full());
}

TEST(WindowTest, PopOldestIsFifo) {
  StreamWindow w(3);
  w.Push(5, 0, {});
  w.Push(6, 0, {});
  w.Push(7, 0, {});
  EXPECT_EQ(w.Oldest(), 5u);
  EXPECT_EQ(w.PopOldest().id, 5u);
  EXPECT_EQ(w.PopOldest().id, 6u);
  EXPECT_EQ(w.PopOldest().id, 7u);
  EXPECT_TRUE(w.Empty());
}

TEST(WindowTest, BackEdgesRecordedSymmetrically) {
  StreamWindow w(4);
  w.Push(1, 0, {});
  w.Push(2, 1, {1});
  const WindowMember& m1 = w.Get(1);
  const WindowMember& m2 = w.Get(2);
  ASSERT_EQ(m1.neighbors.size(), 1u);
  EXPECT_EQ(m1.neighbors[0], 2u);
  ASSERT_EQ(m2.neighbors.size(), 1u);
  EXPECT_EQ(m2.neighbors[0], 1u);
}

TEST(WindowTest, EdgesToEvictedVerticesKeptOnArrival) {
  StreamWindow w(2);
  w.Push(1, 0, {});
  w.Push(2, 0, {1});
  const WindowMember evicted = w.PopOldest();  // vertex 1 leaves
  EXPECT_EQ(evicted.id, 1u);
  // New arrival references the evicted vertex: recorded for LDG scoring,
  // no symmetric update (vertex 1 is gone).
  w.Push(3, 0, {1, 2});
  const WindowMember& m3 = w.Get(3);
  EXPECT_EQ(m3.neighbors.size(), 2u);
}

TEST(WindowTest, RemoveArbitraryMember) {
  StreamWindow w(3);
  w.Push(1, 0, {});
  w.Push(2, 0, {});
  w.Push(3, 0, {});
  const WindowMember m = w.Remove(2);
  EXPECT_EQ(m.id, 2u);
  EXPECT_FALSE(w.Contains(2));
  EXPECT_EQ(w.Size(), 2u);
  // Age order skips the removed member.
  EXPECT_EQ(w.PopOldest().id, 1u);
  EXPECT_EQ(w.PopOldest().id, 3u);
}

TEST(WindowTest, RemoveOldestThenOldestAdvances) {
  StreamWindow w(3);
  w.Push(1, 0, {});
  w.Push(2, 0, {});
  w.Remove(1);
  EXPECT_EQ(w.Oldest(), 2u);
}

TEST(WindowTest, ArrivalSequenceMonotone) {
  StreamWindow w(3);
  w.Push(9, 0, {});
  w.Push(4, 0, {});
  EXPECT_LT(w.Get(9).arrival_seq, w.Get(4).arrival_seq);
}

TEST(WindowTest, MembersInOrder) {
  StreamWindow w(4);
  w.Push(3, 0, {});
  w.Push(1, 0, {});
  w.Push(2, 0, {});
  w.Remove(1);
  EXPECT_EQ(w.MembersInOrder(), (std::vector<VertexId>{3, 2}));
}

TEST(WindowTest, CapacityOfZeroBecomesOne) {
  StreamWindow w(0);
  EXPECT_EQ(w.Capacity(), 1u);
}

}  // namespace
}  // namespace loom
