// Tests for partitioning quality metrics.

#include <gtest/gtest.h>

#include "metrics/metrics.h"
#include "workload/query_builders.h"

namespace loom {
namespace {

TEST(MetricsTest, CutEdgesCounted) {
  const LabeledGraph g = PaperFigure1Graph();  // 9 edges
  PartitionAssignment a(2, 0);
  // Split the q1 square {0,1,4,5} from the rest.
  for (const VertexId v : {0u, 1u, 4u, 5u}) ASSERT_TRUE(a.Assign(v, 0).ok());
  for (const VertexId v : {2u, 3u, 6u, 7u}) ASSERT_TRUE(a.Assign(v, 1).ok());
  // Cut edges: (1,2), (5,6), (4,7) -> 3.
  EXPECT_EQ(NumCutEdges(g, a), 3u);
  EXPECT_NEAR(EdgeCutFraction(g, a), 3.0 / 9.0, 1e-12);
}

TEST(MetricsTest, NoEdgesMeansZeroCut) {
  LabeledGraph g;
  g.AddVertex(0);
  PartitionAssignment a(2, 0);
  ASSERT_TRUE(a.Assign(0, 0).ok());
  EXPECT_EQ(NumCutEdges(g, a), 0u);
  EXPECT_EQ(EdgeCutFraction(g, a), 0.0);
}

TEST(MetricsTest, BalanceOfPerfectSplit) {
  PartitionAssignment a(2, 0);
  for (VertexId v = 0; v < 10; ++v) ASSERT_TRUE(a.Assign(v, v % 2).ok());
  EXPECT_DOUBLE_EQ(BalanceMaxOverAvg(a), 1.0);
}

TEST(MetricsTest, BalanceOfSkewedSplit) {
  PartitionAssignment a(2, 0);
  for (VertexId v = 0; v < 9; ++v) ASSERT_TRUE(a.Assign(v, 0).ok());
  ASSERT_TRUE(a.Assign(9, 1).ok());
  // max = 9, avg = 5.
  EXPECT_DOUBLE_EQ(BalanceMaxOverAvg(a), 1.8);
}

TEST(MetricsTest, AllAssignedDetectsGaps) {
  const LabeledGraph g = PaperFigure1Graph();
  PartitionAssignment a(2, 0);
  ASSERT_TRUE(a.Assign(0, 0).ok());
  EXPECT_FALSE(AllAssigned(g, a));
  for (VertexId v = 1; v < g.NumVertices(); ++v) {
    ASSERT_TRUE(a.Assign(v, 1).ok());
  }
  EXPECT_TRUE(AllAssigned(g, a));
}

TEST(MetricsTest, SizesToStringFormat) {
  PartitionAssignment a(3, 0);
  ASSERT_TRUE(a.Assign(0, 0).ok());
  ASSERT_TRUE(a.Assign(1, 0).ok());
  ASSERT_TRUE(a.Assign(2, 2).ok());
  EXPECT_EQ(SizesToString(a), "2/0/1");
}

}  // namespace
}  // namespace loom
