// Recommender scenario (the paper's §1 motivation cites graph-based
// recommender systems [7]).
//
// A retail co-interaction graph streams in: users, items and tags. The
// online workload is recommendation pattern matching — "users who bought X
// also bought Y" paths and co-tagged item diamonds. This example contrasts a
// *workload-agnostic* deployment (LDG) with LOOM fed two different
// workloads, demonstrating the paper's core point: the right partitioning
// depends on the queries, not just the graph. The same graph partitioned for
// workload A performs worse on workload B and vice versa.
//
//   ./build/examples/example_recommender

#include <cstdio>

#include "common/table.h"
#include "core/loom.h"
#include "graph/generators.h"
#include "metrics/metrics.h"
#include "partition/ldg_partitioner.h"
#include "stream/stream.h"
#include "workload/query_builders.h"
#include "workload/query_engine.h"

namespace {

constexpr loom::Label kUser = 0;
constexpr loom::Label kItem = 1;
constexpr loom::Label kTag = 2;

}  // namespace

int main() {
  using namespace loom;

  // --- Two alternative online workloads over the same store.
  Workload bought_also;  // user-centric navigation
  (void)bought_also.Add("also-bought", PathQuery({kItem, kUser, kItem}), 5.0);
  (void)bought_also.Add("user-chain",
                        PathQuery({kUser, kItem, kUser}), 2.0);
  bought_also.Normalize();

  Workload tag_centric;  // catalogue curation
  (void)tag_centric.Add("co-tagged", PathQuery({kItem, kTag, kItem}), 5.0);
  (void)tag_centric.Add("tag-triangle", TriangleQuery(kItem, kTag, kItem),
                        2.0);
  tag_centric.Normalize();

  // --- The co-interaction graph, containing both structures.
  Rng rng(29);
  LabeledGraph graph = BarabasiAlbert(25000, 3, LabelConfig{3, 0.4}, rng);
  for (const Workload* w : {&bought_also, &tag_centric}) {
    for (const QuerySpec& q : w->queries()) {
      PlantMotifs(&graph, q.pattern, 700, rng, /*locality_span=*/32);
    }
  }
  const GraphStream stream = MakeStream(graph, StreamOrder::kNatural, rng);
  std::printf("catalogue graph: %zu vertices, %zu interactions\n",
              graph.NumVertices(), graph.NumEdges());

  // --- Three deployments of the same store.
  PartitionerOptions popts;
  popts.k = 8;
  popts.num_vertices_hint = graph.NumVertices();
  popts.num_edges_hint = graph.NumEdges();
  popts.window_size = 1024;

  LdgPartitioner agnostic(popts);
  agnostic.Run(stream);

  auto make_loom = [&](const Workload& w) {
    LoomOptions lopts;
    lopts.partitioner = popts;
    lopts.matcher.frequency_threshold = 0.1;
    auto loom = Loom::Create(w, lopts);
    if (loom.ok()) (*loom)->Partitioner().Run(stream);
    return loom;
  };
  auto loom_bought = make_loom(bought_also);
  auto loom_tags = make_loom(tag_centric);
  if (!loom_bought.ok() || !loom_tags.ok()) return 1;

  // --- Cross-evaluation matrix: rows = deployment, columns = live workload.
  std::printf("\nsingle-partition answer rate (row layout, column traffic):\n");
  std::printf("%-22s %-16s %-16s\n", "layout \\ traffic", "also-bought",
              "tag-centric");
  auto eval = [&](const PartitionAssignment& a, const Workload& w) {
    return FormatPercent(
        EvaluateWorkloadIpt(graph, a, w).single_partition_fraction);
  };
  std::printf("%-22s %-16s %-16s\n", "ldg (agnostic)",
              eval(agnostic.assignment(), bought_also).c_str(),
              eval(agnostic.assignment(), tag_centric).c_str());
  std::printf("%-22s %-16s %-16s\n", "loom(also-bought)",
              eval((*loom_bought)->Partitioner().assignment(), bought_also)
                  .c_str(),
              eval((*loom_bought)->Partitioner().assignment(), tag_centric)
                  .c_str());
  std::printf("%-22s %-16s %-16s\n", "loom(tag-centric)",
              eval((*loom_tags)->Partitioner().assignment(), bought_also)
                  .c_str(),
              eval((*loom_tags)->Partitioner().assignment(), tag_centric)
                  .c_str());

  std::printf("\nReading: each LOOM layout is best on the diagonal — the\n"
              "workload it was built for — which is the paper's thesis:\n"
              "partition quality is a property of (graph, workload), not of\n"
              "the graph alone.\n");
  return 0;
}
