// Social-network scenario (the paper's §1 motivation: "social network
// users ... readily modelled as large graphs").
//
// A social graph arrives as a stream — users join, mostly connecting to
// friends who joined recently (the stochastic ordering of §3.1). The online
// workload is navigational pattern matching: friend-of-friend suggestions,
// mutual-friend triangles, and group-co-membership stars. This example
// partitions the stream with LOOM and all baselines, then reports the
// latency-relevant metrics for the workload, including a simple latency
// model: local traversal 0.1ms, remote hop 1ms.
//
//   ./build/examples/example_social_network

#include <cstdio>

#include "common/table.h"
#include "core/loom.h"
#include "graph/generators.h"
#include "metrics/metrics.h"
#include "partition/fennel_partitioner.h"
#include "partition/hash_partitioner.h"
#include "partition/ldg_partitioner.h"
#include "stream/stream.h"
#include "workload/query_builders.h"
#include "workload/query_engine.h"

namespace {

// Vertex labels of the social graph.
constexpr loom::Label kPerson = 0;
constexpr loom::Label kGroup = 1;
constexpr loom::Label kPage = 2;

}  // namespace

int main() {
  using namespace loom;

  // --- Workload: navigation patterns with realistic frequency skew.
  Workload workload;
  (void)workload.Add("friend-of-friend",
                     PathQuery({kPerson, kPerson, kPerson}), 6.0);
  (void)workload.Add("mutual-friends",
                     TriangleQuery(kPerson, kPerson, kPerson), 3.0);
  (void)workload.Add("group-suggestion",
                     PathQuery({kPerson, kGroup, kPerson}), 2.0);
  (void)workload.Add("page-fans", StarQuery(kPage, {kPerson, kPerson}), 1.0);
  workload.Normalize();

  // --- The social graph: preferential attachment (celebrities become hubs),
  //     with the workload's structures occurring as temporally local events
  //     (people who befriend each other sign up around the same time). The
  //     stream replays signup order (the natural temporal ordering); see
  //     bench_orderings for how other §3.1 orderings change the picture.
  Rng rng(7);
  LabeledGraph graph = BarabasiAlbert(30000, 3, LabelConfig{3, 0.4}, rng);
  for (const QuerySpec& q : workload.queries()) {
    PlantMotifs(&graph, q.pattern, 900, rng, /*locality_span=*/48);
  }
  const GraphStream stream = MakeStream(graph, StreamOrder::kNatural, rng);
  std::printf("social graph: %zu users/groups/pages, %zu relationships\n",
              graph.NumVertices(), graph.NumEdges());

  // --- Partition with LOOM and baselines.
  PartitionerOptions popts;
  popts.k = 16;
  popts.num_vertices_hint = graph.NumVertices();
  popts.num_edges_hint = graph.NumEdges();
  popts.window_size = 1024;

  LoomOptions lopts;
  lopts.partitioner = popts;
  lopts.matcher.frequency_threshold = 0.1;
  auto loom = Loom::Create(workload, lopts);
  if (!loom.ok()) {
    std::fprintf(stderr, "%s\n", loom.status().ToString().c_str());
    return 1;
  }
  (*loom)->Partitioner().Run(stream);

  HashPartitioner hash(popts);
  hash.Run(stream);
  LdgPartitioner ldg(popts);
  ldg.Run(stream);
  FennelPartitioner fennel(popts);
  fennel.Run(stream);

  // --- Report, with a simple query latency model.
  constexpr double kLocalMs = 0.1;
  constexpr double kRemoteMs = 1.0;
  std::printf("\n%-10s %-9s %-8s %-9s %-10s %s\n", "layout", "edge-cut",
              "1-part", "emb-cut", "ipt-prob", "modelled query latency");
  auto report = [&](const char* name, const PartitionAssignment& a) {
    const WorkloadIptStats s = EvaluateWorkloadIpt(graph, a, workload);
    double latency_ms = 0.0;
    for (size_t i = 0; i < workload.NumQueries(); ++i) {
      const QueryExecutionStats& q = s.per_query[i];
      const double local = static_cast<double>(q.total_traversals -
                                               q.cross_traversals);
      const double remote = static_cast<double>(q.cross_traversals);
      const double per_answer =
          q.num_embeddings
              ? (local * kLocalMs + remote * kRemoteMs) / q.num_embeddings
              : 0.0;
      latency_ms += workload.queries()[i].frequency * per_answer;
    }
    std::printf("%-10s %-9s %-8s %-9s %-10s %.2f ms/answer\n", name,
                FormatPercent(EdgeCutFraction(graph, a)).c_str(),
                FormatPercent(s.single_partition_fraction).c_str(),
                FormatPercent(s.embedding_cut_fraction).c_str(),
                FormatPercent(s.ipt_probability).c_str(), latency_ms);
  };
  report("hash", hash.assignment());
  report("ldg", ldg.assignment());
  report("fennel", fennel.assignment());
  report("loom", (*loom)->Partitioner().assignment());

  const LoomStats& ls = (*loom)->Partitioner().loom_stats();
  std::printf("\nloom kept %llu vertices inside %llu motif clusters "
              "(%llu had to be split)\n",
              static_cast<unsigned long long>(ls.cluster_vertices),
              static_cast<unsigned long long>(ls.clusters_assigned),
              static_cast<unsigned long long>(ls.clusters_split));
  return 0;
}
