// Fraud-detection scenario (the paper's §1 motivation cites pattern matching
// for fraud detection [18]).
//
// A payment network streams in: accounts, merchants and devices appear as
// they first transact. Fraud analysts continuously run ring/fan-out pattern
// queries. Fraud structures are bursty — a ring's accounts and edges appear
// within a short time span — which is precisely the regime where LOOM's
// stream window captures whole motifs and pins them to one partition.
//
// The example also demonstrates the figure-3 style overlap: shared mule
// accounts participate in several rings, and LOOM's §4.4 rule co-locates
// the overlapping matches.
//
//   ./build/examples/example_fraud_detection

#include <cstdio>

#include "common/table.h"
#include "core/loom.h"
#include "graph/generators.h"
#include "metrics/metrics.h"
#include "partition/ldg_partitioner.h"
#include "stream/stream.h"
#include "workload/query_builders.h"
#include "workload/query_engine.h"

namespace {

constexpr loom::Label kAccount = 0;
constexpr loom::Label kMerchant = 1;
constexpr loom::Label kDevice = 2;

}  // namespace

int main() {
  using namespace loom;

  // --- Fraud workload: rings of accounts, device-sharing pairs, and
  //     merchant bust-out fans.
  Workload workload;
  (void)workload.Add("money-ring-3",
                     CycleQuery({kAccount, kAccount, kAccount}), 4.0);
  (void)workload.Add("device-sharing",
                     PathQuery({kAccount, kDevice, kAccount}), 3.0);
  (void)workload.Add("bust-out",
                     StarQuery(kMerchant, {kAccount, kAccount, kAccount}),
                     2.0);
  (void)workload.Add("mule-chain",
                     PathQuery({kAccount, kAccount, kMerchant}), 1.0);
  workload.Normalize();

  // --- Payment graph: heavy-tailed transaction network; fraud structures
  //     planted as temporally tight bursts (span 24 arrivals).
  Rng rng(13);
  LabeledGraph graph = BarabasiAlbert(25000, 3, LabelConfig{3, 0.5}, rng);
  size_t planted = 0;
  for (const QuerySpec& q : workload.queries()) {
    planted += PlantMotifs(&graph, q.pattern, 700, rng, /*locality_span=*/24)
                   .size();
  }
  const GraphStream stream = MakeStream(graph, StreamOrder::kNatural, rng);
  std::printf("payment graph: %zu entities, %zu transactions, %zu planted "
              "fraud structures\n",
              graph.NumVertices(), graph.NumEdges(), planted);

  // --- Partition.
  PartitionerOptions popts;
  popts.k = 12;
  popts.num_vertices_hint = graph.NumVertices();
  popts.num_edges_hint = graph.NumEdges();
  popts.window_size = 2048;

  LoomOptions lopts;
  lopts.partitioner = popts;
  lopts.matcher.frequency_threshold = 0.1;
  auto loom = Loom::Create(workload, lopts);
  if (!loom.ok()) {
    std::fprintf(stderr, "%s\n", loom.status().ToString().c_str());
    return 1;
  }
  std::printf("workload summary: %zu motifs in TPSTry++ (%zu frequent at "
              "T=%.2f)\n",
              (*loom)->Trie().NumNodes(),
              (*loom)->Trie().FrequentNodes(0.1).size(), 0.1);
  (*loom)->Partitioner().Run(stream);
  LdgPartitioner ldg(popts);
  ldg.Run(stream);

  // --- How often can an analyst's alert query run without crossing
  //     partitions? (Cross-partition hops leak latency the fraudster can
  //     exploit; single-partition answers can be verified at wire speed.)
  std::printf("\n%-28s %-12s %-12s\n", "query", "ldg 1-part", "loom 1-part");
  const WorkloadIptStats ldg_stats =
      EvaluateWorkloadIpt(graph, ldg.assignment(), workload);
  const WorkloadIptStats loom_stats = EvaluateWorkloadIpt(
      graph, (*loom)->Partitioner().assignment(), workload);
  for (size_t i = 0; i < workload.NumQueries(); ++i) {
    auto frac = [&](const WorkloadIptStats& s) {
      const QueryExecutionStats& q = s.per_query[i];
      return q.num_embeddings
                 ? static_cast<double>(q.single_partition_embeddings) /
                       static_cast<double>(q.num_embeddings)
                 : 0.0;
    };
    std::printf("%-28s %-12s %-12s\n", workload.queries()[i].name.c_str(),
                FormatPercent(frac(ldg_stats)).c_str(),
                FormatPercent(frac(loom_stats)).c_str());
  }
  std::printf("\nworkload-weighted: ldg %s vs loom %s single-partition "
              "answers; answer-edge cut %s vs %s\n",
              FormatPercent(ldg_stats.single_partition_fraction).c_str(),
              FormatPercent(loom_stats.single_partition_fraction).c_str(),
              FormatPercent(ldg_stats.embedding_cut_fraction).c_str(),
              FormatPercent(loom_stats.embedding_cut_fraction).c_str());
  return 0;
}
