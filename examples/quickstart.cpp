// Quickstart: partition a motif-rich social-style graph with LOOM and compare
// against workload-agnostic baselines on the paper's quality measure — the
// probability that executing a query crosses partition boundaries.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/example_quickstart

#include <cstdio>

#include "core/loom.h"
#include "graph/generators.h"
#include "metrics/metrics.h"
#include "partition/hash_partitioner.h"
#include "partition/ldg_partitioner.h"
#include "stream/stream.h"
#include "workload/query_builders.h"
#include "workload/query_engine.h"

int main() {
  using namespace loom;

  // 1. A workload: triangles of (person, person, forum) and friend-of-friend
  //    paths, the skewed traffic the paper's introduction motivates.
  Workload workload;
  (void)workload.Add("fof-path", PathQuery({0, 0, 0}), 5.0);
  (void)workload.Add("triangle", TriangleQuery(0, 0, 1), 3.0);
  (void)workload.Add("post-chain", PathQuery({0, 1, 2}), 2.0);
  workload.Normalize();

  // 2. A graph stream: a preferential-attachment graph with the workload's
  //    motifs planted at realistic density, arriving in stochastic order.
  Rng rng(42);
  LabeledGraph graph = BarabasiAlbert(20000, 3, LabelConfig{3, 0.4}, rng);
  for (const QuerySpec& q : workload.queries()) {
    // locality_span=48: each instance's vertices share a small id window, so
    // under the natural (temporal) ordering the instance fits in the stream
    // window — motifs are created together, the paper's dynamic-graph regime.
    PlantMotifs(&graph, q.pattern, 1200, rng, /*locality_span=*/48);
  }
  const GraphStream stream = MakeStream(graph, StreamOrder::kNatural, rng);

  // 3. Configure LOOM: k partitions, a stream window, and the workload.
  LoomOptions options;
  options.partitioner.k = 8;
  options.partitioner.num_vertices_hint = graph.NumVertices();
  options.partitioner.num_edges_hint = graph.NumEdges();
  options.partitioner.window_size = 512;
  options.matcher.frequency_threshold = 0.2;

  auto loom = Loom::Create(workload, options);
  if (!loom.ok()) {
    std::fprintf(stderr, "Loom::Create failed: %s\n",
                 loom.status().ToString().c_str());
    return 1;
  }
  std::printf("TPSTry++ built: %zu motif nodes, %zu DAG edges\n",
              (*loom)->Trie().NumNodes(), (*loom)->Trie().NumDagEdges());

  // 4. One pass over the stream.
  (*loom)->Partitioner().Run(stream);

  // 5. Baselines under identical conditions.
  HashPartitioner hash(options.partitioner);
  hash.Run(stream);
  LdgPartitioner ldg(options.partitioner);
  ldg.Run(stream);

  // 6. Compare: edge-cut (the classic objective) and inter-partition
  //    traversal probability (the paper's objective).
  auto report = [&](const char* name, const PartitionAssignment& a) {
    const WorkloadIptStats ipt = EvaluateWorkloadIpt(graph, a, workload);
    std::printf("%-12s cut=%5.1f%%  balance=%.3f  ipt=%5.2f%%  1-part=%5.1f%%\n",
                name, 100.0 * EdgeCutFraction(graph, a), BalanceMaxOverAvg(a),
                100.0 * ipt.ipt_probability,
                100.0 * ipt.single_partition_fraction);
  };
  std::printf("\n%-12s %-10s %-13s %-11s %s\n", "partitioner", "edge-cut",
              "balance", "ipt-prob", "single-partition matches");
  report("hash", hash.assignment());
  report("ldg", ldg.assignment());
  report("loom", (*loom)->Partitioner().assignment());

  const LoomStats& stats = (*loom)->Partitioner().loom_stats();
  std::printf(
      "\nloom internals: %llu motif clusters (%llu vertices), "
      "%llu split, %llu singles\n",
      static_cast<unsigned long long>(stats.clusters_assigned),
      static_cast<unsigned long long>(stats.cluster_vertices),
      static_cast<unsigned long long>(stats.clusters_split),
      static_cast<unsigned long long>(stats.single_vertices));
  return 0;
}
