// Experiment E3 (DESIGN.md §3): stream-ordering sensitivity — the evaluation
// §5 explicitly promises ("in the presence of a number of different
// graph-stream orderings"). Expected shape (§3.1): adversarial orderings are
// worst for greedy heuristics; stochastic/natural orders let LOOM capture
// motifs (temporally local structure) best.

#include <iostream>

#include "common/table.h"
#include "harness.h"

int main() {
  using namespace loom;
  using namespace loom::bench;

  const uint32_t n = 20000;
  const uint32_t k = 8;

  WorkloadGenOptions wopts;
  wopts.num_queries = 4;
  wopts.seed = 5;
  Workload workload = MixedMotifWorkload(wopts);

  Rng rng(31);
  LabeledGraph g =
      MakeGraph(GraphKind::kBarabasiAlbert, n, 6, LabelConfig{4, 0.4}, rng);
  PlantWorkloadMotifs(&g, workload, n / 24, rng, /*locality_span=*/48);

  TablePrinter table(
      "E3 ordering sensitivity (n=" + std::to_string(g.NumVertices()) +
          ", k=" + std::to_string(k) + ")",
      {"ordering", "partitioner", "edge-cut", "ipt-prob", "1-part",
       "emb-cut"});

  for (const StreamOrder order :
       {StreamOrder::kRandom, StreamOrder::kBfs, StreamOrder::kDfs,
        StreamOrder::kAdversarial, StreamOrder::kStochastic,
        StreamOrder::kNatural}) {
    Rng order_rng(77);
    const GraphStream stream = MakeStream(g, order, order_rng);

    PartitionerOptions popts;
    popts.k = k;
    popts.num_vertices_hint = g.NumVertices();
    popts.num_edges_hint = g.NumEdges();
    popts.window_size = 1024;

    PartitionerSet set = MakeStandardSet(popts, workload, 0.2);
    for (StreamingPartitioner* p : set.All()) {
      if (p->Name() == "fennel" || p->Name() == "ldg-buffered") continue;
      const RunResult r = RunStreaming(p, g, stream, workload);
      table.AddRow({StreamOrderName(order), r.partitioner,
                    FormatPercent(r.cut_fraction),
                    FormatPercent(r.ipt.ipt_probability),
                    FormatPercent(r.ipt.single_partition_fraction),
                    FormatPercent(r.ipt.embedding_cut_fraction)});
    }
  }
  table.Print(std::cout);
  std::cout << "\nExpected shape: adversarial order degrades greedy "
               "partitioners most; loom's motif capture pays off under "
               "natural/stochastic orders.\n";
  return 0;
}
