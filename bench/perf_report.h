#ifndef LOOM_BENCH_PERF_REPORT_H_
#define LOOM_BENCH_PERF_REPORT_H_

/// \file
/// Shared machinery for the machine-readable perf baseline
/// (`BENCH_micro.json`, schema v3): the self-timed micro loops, the
/// end-to-end streaming-throughput harness, and the JSON emitter. Used by
/// both `tools/run_benchmarks` (full baseline refresh) and the standalone
/// `bench_throughput` binary (throughput-focused runs + the CI perf smoke).
///
/// Schema v2 = v1's `results` micro rows plus a `throughput` section: one
/// row per (graph family × partitioner) streaming the FULL pipeline —
/// window, matcher, cluster scoring, assignment — end to end, reporting
/// vertices/s and edges/s. This is the repo's headline throughput number;
/// regressions gate on it. Schema v3 adds `peak_rss_bytes` (the process
/// high-water mark at row emission; common/timer.h) to every row.

#include <cstdint>
#include <string>
#include <vector>

#include "harness.h"

namespace loom {
namespace bench {

// ----------------------------------------------------------------- JSON
// Minimal emitter: enough for flat objects and arrays of flat objects.

std::string JsonEscape(const std::string& s);

struct JsonObject {
  std::vector<std::string> fields;

  void Add(const std::string& key, const std::string& value);
  void Add(const std::string& key, double value);
  void Add(const std::string& key, uint64_t value);
  void AddRaw(const std::string& key, const std::string& raw);

  std::string Render(int indent) const;
};

std::string RenderArray(const std::vector<JsonObject>& items, int indent);

bool WriteFile(const std::string& path, const std::string& content);

// ----------------------------------------------------------------- micro

/// One self-timed hot-path loop result.
struct MicroResult {
  std::string name;
  uint64_t iterations = 0;
  uint64_t items = 0;  // work units processed (for throughput)
  double seconds = 0.0;
};

/// Runs the self-timed hot-path loops (mirroring bench_micro.cc, without
/// the google-benchmark dependency so the driver runs everywhere).
std::vector<MicroResult> RunMicroLoops(bool fast);

// ------------------------------------------------------------ throughput

/// One end-to-end streaming run: the full pipeline at ingest rate.
struct ThroughputRow {
  std::string family;
  std::string partitioner;
  uint64_t num_vertices = 0;
  uint64_t num_edges = 0;
  double seconds = 0.0;
  double vertices_per_second = 0.0;
  double edges_per_second = 0.0;
};

/// Streams a motif-planted graph of every bench family through hash (stream
/// floor), ldg (one-shot heuristic) and loom (full window + matcher +
/// cluster assignment pipeline), timed end to end over `reps` runs.
std::vector<ThroughputRow> RunThroughput(bool fast);

// ----------------------------------------------------------------- report

/// Writes `BENCH_micro.json` (schema loom-bench-micro-v2): micro `results`
/// plus the `throughput` section. Returns false on I/O or validation
/// failure (a zero-iteration loop, an empty section).
bool WriteMicroReport(const std::string& path, const std::string& mode,
                      const std::vector<MicroResult>& micro,
                      const std::vector<ThroughputRow>& throughput);

}  // namespace bench
}  // namespace loom

#endif  // LOOM_BENCH_PERF_REPORT_H_
