// bench_throughput: end-to-end streaming throughput of the LOOM pipeline.
//
// Streams a motif-planted graph of every bench family through the FULL
// pipeline — window, matcher, cluster scoring, assignment — plus the hash
// and ldg reference heuristics, and reports vertices/s and edges/s per
// (family × partitioner). This is the repo's headline throughput number.
//
// Usage:
//   bench_throughput [--fast|--full] [--out DIR]
//
// --fast (default) runs the two fast families in a few seconds; --full runs
// all four at paper scale. With --out DIR the run also refreshes
// DIR/BENCH_micro.json (schema v2: micro `results` + `throughput` section),
// which is what the CI perf-smoke step executes and validates.

#include <cstdio>
#include <iostream>
#include <string>

#include "perf_report.h"

namespace loom {
namespace bench {
namespace {

int Main(int argc, char** argv) {
  bool fast = true;
  std::string out_dir;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--fast") {
      fast = true;
    } else if (arg == "--full") {
      fast = false;
    } else if (arg == "--out" && i + 1 < argc) {
      out_dir = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "Usage: bench_throughput [--fast|--full] [--out DIR]\n";
      return 0;
    } else {
      std::cerr << "bench_throughput: unknown argument '" << arg << "'\n";
      return 2;
    }
  }
  const std::string mode = fast ? "fast" : "full";

  std::cout << "bench_throughput: end-to-end pipeline (" << mode << ")\n\n";
  const std::vector<ThroughputRow> rows = RunThroughput(fast);
  if (rows.empty()) {
    std::cerr << "bench_throughput: no rows produced\n";
    return 1;
  }

  std::printf("%-18s %-8s %10s %10s %12s %12s\n", "family", "part", "vertices",
              "edges", "vertices/s", "edges/s");
  for (const ThroughputRow& r : rows) {
    std::printf("%-18s %-8s %10llu %10llu %12.0f %12.0f\n", r.family.c_str(),
                r.partitioner.c_str(),
                static_cast<unsigned long long>(r.num_vertices),
                static_cast<unsigned long long>(r.num_edges),
                r.vertices_per_second, r.edges_per_second);
  }

  if (!out_dir.empty()) {
    // The JSON pairs the throughput section with freshly-run micro loops so
    // the file is always internally consistent (schema v2 has both).
    const std::vector<MicroResult> micro = RunMicroLoops(fast);
    const std::string path = out_dir + "/BENCH_micro.json";
    const std::string tmp = path + ".tmp";
    if (!WriteMicroReport(tmp, mode, micro, rows)) {
      std::remove(tmp.c_str());
      return 1;
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
      std::cerr << "bench_throughput: failed to move " << path
                << " into place\n";
      std::remove(tmp.c_str());
      return 1;
    }
    std::cout << "\n  wrote " << path << "\n";
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace loom

int main(int argc, char** argv) { return loom::bench::Main(argc, argv); }
