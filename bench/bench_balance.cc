// Experiment E7 (DESIGN.md §3): balance under capacity pressure. §4.4 flags
// cluster assignment as a balance risk ("if a set of connected sub-graphs is
// very large, it is unclear what effect this would have on partition
// balance"); loom's split safety valve bounds it. Expected shape: every
// partitioner respects C = ceil(slack*n/k); loom's max load runs closest to
// the cap; split counts grow as slack shrinks.

#include <iostream>

#include "common/table.h"
#include "harness.h"

int main() {
  using namespace loom;
  using namespace loom::bench;

  const uint32_t n = 20000;
  const uint32_t k = 8;

  WorkloadGenOptions wopts;
  wopts.num_queries = 4;
  wopts.seed = 5;
  Workload workload = MixedMotifWorkload(wopts);

  Rng rng(13);
  LabeledGraph g =
      MakeGraph(GraphKind::kBarabasiAlbert, n, 6, LabelConfig{4, 0.4}, rng);
  PlantWorkloadMotifs(&g, workload, n / 24, rng, /*locality_span=*/48);
  const GraphStream stream = MakeStream(g, StreamOrder::kNatural, rng);

  TablePrinter table(
      "E7 balance under capacity slack (n=" +
          std::to_string(g.NumVertices()) + ", k=" + std::to_string(k) + ")",
      {"slack", "partitioner", "balance(max/avg)", "capacity-C", "max-load",
       "loom-splits"});

  for (const double slack : {1.01, 1.05, 1.1, 1.3}) {
    PartitionerOptions popts;
    popts.k = k;
    popts.num_vertices_hint = g.NumVertices();
    popts.num_edges_hint = g.NumEdges();
    popts.capacity_slack = slack;
    popts.window_size = 1024;

    PartitionerSet set = MakeStandardSet(popts, workload, 0.2);
    for (StreamingPartitioner* p : set.All()) {
      if (p->Name() == "ldg-buffered" || p->Name() == "fennel") continue;
      const RunResult r = RunStreaming(p, g, stream, workload);
      uint32_t max_load = 0;
      for (const uint32_t s : p->assignment().Sizes()) {
        max_load = std::max(max_load, s);
      }
      std::string splits = "-";
      if (auto* lp = dynamic_cast<LoomPartitioner*>(p)) {
        splits = std::to_string(lp->loom_stats().clusters_split);
      }
      table.AddRow({FormatDouble(slack, 2), r.partitioner,
                    FormatDouble(r.balance),
                    std::to_string(p->assignment().capacity()),
                    std::to_string(max_load), splits});
    }
  }
  table.Print(std::cout);
  std::cout << "\nInvariant: max-load <= capacity-C for every partitioner "
               "and slack.\n";
  return 0;
}
