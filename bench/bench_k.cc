// Experiment E9 (DESIGN.md §3): partition-count sweep. Expected shape: cut
// and ipt grow with k for every partitioner (more boundaries to cross);
// loom's answer-locality advantage persists across k.

#include <iostream>

#include "common/table.h"
#include "harness.h"

int main() {
  using namespace loom;
  using namespace loom::bench;

  const uint32_t n = 20000;

  WorkloadGenOptions wopts;
  wopts.num_queries = 4;
  wopts.seed = 5;
  Workload workload = MixedMotifWorkload(wopts);

  Rng rng(21);
  LabeledGraph g =
      MakeGraph(GraphKind::kBarabasiAlbert, n, 6, LabelConfig{4, 0.4}, rng);
  PlantWorkloadMotifs(&g, workload, n / 24, rng, /*locality_span=*/48);
  const GraphStream stream = MakeStream(g, StreamOrder::kNatural, rng);

  TablePrinter table(
      "E9 k-sweep (n=" + std::to_string(g.NumVertices()) + ")",
      {"k", "partitioner", "edge-cut", "ipt-prob", "1-part", "emb-cut"});

  for (const uint32_t k : {2u, 4u, 8u, 16u, 32u}) {
    PartitionerOptions popts;
    popts.k = k;
    popts.num_vertices_hint = g.NumVertices();
    popts.num_edges_hint = g.NumEdges();
    popts.window_size = 1024;

    PartitionerSet set = MakeStandardSet(popts, workload, 0.2);
    for (StreamingPartitioner* p : set.All()) {
      if (p->Name() == "ldg-buffered" || p->Name() == "fennel") continue;
      const RunResult r = RunStreaming(p, g, stream, workload);
      table.AddRow({std::to_string(k), r.partitioner,
                    FormatPercent(r.cut_fraction),
                    FormatPercent(r.ipt.ipt_probability),
                    FormatPercent(r.ipt.single_partition_fraction),
                    FormatPercent(r.ipt.embedding_cut_fraction)});
    }
  }
  table.Print(std::cout);
  std::cout << "\nExpected shape: all metrics degrade as k grows; loom keeps "
               "its 1-part / emb-cut lead at every k.\n";
  return 0;
}
