// Experiment E5 (DESIGN.md §3): frequency-threshold T sweep (§4.2: "any node
// ... which has a p-value above a user-defined threshold T is denoted
// frequent"). Expected shape: low T tracks more motifs (better locality,
// more matcher work); T above every support degenerates to buffered LDG.

#include <iostream>

#include "common/table.h"
#include "harness.h"

int main() {
  using namespace loom;
  using namespace loom::bench;

  const uint32_t n = 20000;
  const uint32_t k = 8;

  WorkloadGenOptions wopts;
  wopts.num_queries = 5;
  wopts.frequency_skew = 1.2;  // skewed workload: thresholds bite one by one
  wopts.seed = 5;
  Workload workload = MixedMotifWorkload(wopts);

  Rng rng(42);
  LabeledGraph g =
      MakeGraph(GraphKind::kBarabasiAlbert, n, 6, LabelConfig{4, 0.4}, rng);
  PlantWorkloadMotifs(&g, workload, n / 24, rng, /*locality_span=*/48);
  const GraphStream stream = MakeStream(g, StreamOrder::kNatural, rng);

  TablePrinter table(
      "E5 frequency-threshold sweep, loom (n=" +
          std::to_string(g.NumVertices()) + ", k=" + std::to_string(k) + ")",
      {"T", "frequent-motifs", "ipt-prob", "1-part", "emb-cut",
       "cluster-vertices", "sec"});

  for (const double threshold : {0.01, 0.05, 0.1, 0.2, 0.4, 0.7, 1.01}) {
    PartitionerOptions popts;
    popts.k = k;
    popts.num_vertices_hint = g.NumVertices();
    popts.num_edges_hint = g.NumEdges();
    popts.window_size = 1024;

    LoomOptions lopts;
    lopts.partitioner = popts;
    lopts.matcher.frequency_threshold = threshold;
    auto loom = Loom::Create(workload, lopts);
    if (!loom.ok()) {
      std::cerr << loom.status().ToString() << "\n";
      return 1;
    }
    const size_t frequent = (*loom)->Trie().FrequentNodes(threshold).size();
    const RunResult r =
        RunStreaming(&(*loom)->Partitioner(), g, stream, workload);
    table.AddRow(
        {FormatDouble(threshold, 2), std::to_string(frequent),
         FormatPercent(r.ipt.ipt_probability),
         FormatPercent(r.ipt.single_partition_fraction),
         FormatPercent(r.ipt.embedding_cut_fraction),
         std::to_string((*loom)->Partitioner().loom_stats().cluster_vertices),
         FormatDouble(r.seconds)});
  }
  table.Print(std::cout);
  std::cout << "\nExpected shape: T past the max support -> zero frequent "
               "motifs -> plain windowed LDG behaviour.\n";
  return 0;
}
