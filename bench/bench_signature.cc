// Experiment E10 (DESIGN.md §3): signature quality. §4.3 claims signature
// matching is non-authoritative but "signature collision is highly
// unlikely". Measured here:
//   (1) false negatives: NEVER (embedding => divisibility) — validated on
//       random pattern/graph pairs with VF2 as oracle;
//   (2) false positives: rate at which sig(q) | sig(g) holds without any
//       embedding (divisibility is a containment *filter*);
//   (3) identity collisions: distinct (non-isomorphic) motifs with equal
//       signatures, the TPSTry++ node-identity risk loom's canonical
//       verification removes.

#include <iostream>
#include <map>

#include "common/table.h"
#include "harness.h"
#include "motif/canonical.h"
#include "motif/isomorphism.h"
#include "motif/signature.h"
#include "workload/query_builders.h"

int main() {
  using namespace loom;
  using namespace loom::bench;

  Rng rng(99);
  const uint32_t num_labels = 3;
  const SignatureScheme scheme(num_labels);

  TablePrinter table("E10 signature quality (random patterns vs graphs)",
                     {"experiment", "trials", "violations/hits", "rate"});

  // (1) No false negatives.
  {
    size_t trials = 0;
    size_t violations = 0;
    for (int t = 0; t < 4000; ++t) {
      const LabeledGraph g = ErdosRenyiGnm(
          10, rng.UniformInt(6, 18), LabelConfig{num_labels, 0.0}, rng);
      const LabeledGraph q = RandomConnectedQuery(
          static_cast<uint32_t>(rng.UniformInt(2, 4)),
          static_cast<uint32_t>(rng.UniformInt(0, 2)), num_labels, rng);
      if (!ContainsEmbedding(q, g)) continue;
      ++trials;
      if (!scheme.SignatureOf(q).Divides(scheme.SignatureOf(g))) ++violations;
    }
    table.AddRow({"false negatives (match w/o divisibility)",
                  std::to_string(trials), std::to_string(violations),
                  trials ? FormatPercent(violations / double(trials))
                         : "n/a"});
  }

  // (2) False-positive rate of the divisibility filter.
  {
    size_t divisible = 0;
    size_t false_positive = 0;
    for (int t = 0; t < 4000; ++t) {
      const LabeledGraph g = ErdosRenyiGnm(
          10, rng.UniformInt(6, 18), LabelConfig{num_labels, 0.0}, rng);
      const LabeledGraph q = RandomConnectedQuery(
          static_cast<uint32_t>(rng.UniformInt(2, 4)),
          static_cast<uint32_t>(rng.UniformInt(0, 2)), num_labels, rng);
      if (!scheme.SignatureOf(q).Divides(scheme.SignatureOf(g))) continue;
      ++divisible;
      if (!ContainsEmbedding(q, g)) ++false_positive;
    }
    table.AddRow({"false positives (divisible w/o match)",
                  std::to_string(divisible), std::to_string(false_positive),
                  divisible ? FormatPercent(false_positive / double(divisible))
                            : "n/a"});
  }

  // (3) Identity collisions among small motifs: bucket random connected
  // patterns by signature hash; count non-isomorphic graphs sharing one.
  {
    std::map<uint64_t, std::vector<LabeledGraph>> buckets;
    size_t pairs_same_sig = 0;
    size_t pairs_non_iso = 0;
    for (int t = 0; t < 3000; ++t) {
      const LabeledGraph q = RandomConnectedQuery(
          static_cast<uint32_t>(rng.UniformInt(2, 5)),
          static_cast<uint32_t>(rng.UniformInt(0, 3)), num_labels, rng);
      buckets[scheme.SignatureOf(q).Hash()].push_back(q);
    }
    for (const auto& [hash, graphs] : buckets) {
      for (size_t i = 0; i < graphs.size(); ++i) {
        for (size_t j = i + 1; j < graphs.size(); ++j) {
          ++pairs_same_sig;
          if (!AreIsomorphic(graphs[i], graphs[j])) ++pairs_non_iso;
        }
      }
    }
    table.AddRow({"identity collisions (same sig, non-iso)",
                  std::to_string(pairs_same_sig),
                  std::to_string(pairs_non_iso),
                  pairs_same_sig
                      ? FormatPercent(pairs_non_iso / double(pairs_same_sig))
                      : "n/a"});
  }

  table.Print(std::cout);
  std::cout << "\nExpected shape: zero false negatives (a guarantee); small "
               "false-positive rate; identity collisions exist but are rare "
               "— the \"very low\" collision odds §4.3 relies on, and why "
               "loom offers canonical verification on top.\n";
  return 0;
}
