// Experiment E12: streaming edge partitioning (vertex-cut). HDRF's
// degree-aware scoring should replicate hub vertices and beat DBH's
// degree-based hashing on replication factor, most visibly on power-law
// graphs; lambda trades replication against balance; a budgeted restream
// pass should only ever improve the kept placement. The workload-heat
// variant biases replication toward motif-hot labels. A second table
// sweeps the sharded restream (RunSharded) over shard counts up to
// --threads N (default 4), reporting the share-nothing critical path and
// its speedup over the serial five-pass driver — whole-run and
// restream-only (passes >= 2; pass one is serial in both schedules).

#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "common/table.h"
#include "common/timer.h"
#include "edge_partition/edge_partitioner.h"
#include "edge_partition/edge_restream.h"
#include "edge_partition/workload_heat.h"
#include "harness.h"
#include "stream/arrival_source.h"
#include "tpstry/tpstry_pp.h"

namespace {

std::string Fmt(double v, int precision = 3) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace loom;
  using namespace loom::bench;

  uint32_t threads = 4;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--threads" && i + 1 < argc) {
      const long parsed = std::strtol(argv[++i], nullptr, 10);
      threads = parsed < 1 ? 1 : static_cast<uint32_t>(parsed);
    } else {
      std::cerr << "usage: bench_edge_partition [--threads N]\n";
      return 1;
    }
  }

  const uint32_t n = 20000;
  const uint32_t k = 16;
  const uint32_t avg_degree = 6;

  TablePrinter table(
      "E12 streaming edge partitioning (n=" + std::to_string(n) +
          ", k=" + std::to_string(k) + ")",
      {"graph", "partitioner", "lambda", "rf", "balance", "edges/s",
       "fallbacks"});
  TablePrinter sharded_table(
      "E12b sharded edge restream (hdrf, 5 passes, shard counts to " +
          std::to_string(threads) + ")",
      {"graph", "shards", "rf", "balance", "wall s", "critical s",
       "speedup", "restream x", "serial=="});

  for (const GraphKind kind :
       {GraphKind::kErdosRenyi, GraphKind::kBarabasiAlbert}) {
    Rng rng(2024);
    const LabeledGraph g =
        MakeGraph(kind, n, avg_degree, LabelConfig{4, 0.3}, rng);
    const GraphStream stream = MakeStream(g, StreamOrder::kRandom, rng);

    struct Config {
      std::string name;
      double lambda;
      uint32_t passes;
      double heat_weight;
    };
    const std::vector<Config> configs = {
        {"hdrf", 0.0, 1, 0.0},  {"hdrf", 1.0, 1, 0.0},
        {"hdrf", 4.0, 1, 0.0},  {"hdrf", 1.0, 2, 0.0},
        {"hdrf", 1.0, 1, 1.0},  {"dbh", 1.0, 1, 0.0},
    };

    // Motif-heat table for the workload-aware variant: a small mixed
    // workload over the same label alphabet.
    WorkloadGenOptions wopts;
    wopts.num_queries = 4;
    wopts.seed = 5;
    const Workload workload = MixedMotifWorkload(wopts);
    TpstryPP trie(4);
    for (const QuerySpec& q : workload.queries()) {
      (void)trie.AddQuery(q.pattern, q.frequency);
    }
    const std::vector<double> heat = LabelHeatFromTrie(trie);

    for (const Config& config : configs) {
      EdgePartitionerOptions eopts;
      eopts.k = k;
      eopts.lambda = config.lambda;
      eopts.num_edges_hint = g.NumEdges();
      eopts.num_vertices_hint = g.NumVertices();
      eopts.heat_weight = config.heat_weight;
      if (config.heat_weight > 0.0) eopts.heat = MakeLabelHeatFn(heat);

      auto partitioner = MakeEdgePartitioner(config.name, eopts);
      if (!partitioner.ok()) {
        std::cerr << partitioner.status().ToString() << "\n";
        return 1;
      }

      StreamCursor cursor(stream);
      EdgeRestreamOptions ropts;
      ropts.num_passes = config.passes;
      EdgeRestreamer restreamer(&cursor, ropts);
      const WallTimer timer;
      auto run = restreamer.Run(partitioner->get());
      const double seconds = timer.ElapsedSeconds();
      if (!run.ok()) {
        std::cerr << run.status().ToString() << "\n";
        return 1;
      }

      const EdgePartitionerStats& stats = (*partitioner)->stats();
      std::string name = config.name;
      if (config.passes > 1) name += "+restream";
      if (config.heat_weight > 0.0) name += "+heat";
      table.AddRow(
          {GraphKindName(kind), name, Fmt(config.lambda, 1),
           Fmt(run->replication_factor, 4), Fmt(run->balance),
           Fmt(static_cast<double>(stats.edges_assigned) *
                   static_cast<double>(config.passes) / seconds,
               0),
           std::to_string(stats.overflow_fallbacks + stats.cap_relaxations)});
    }

    // Sharded restream sweep against one serial reference.
    EdgePartitionerOptions sopts;
    sopts.k = k;
    sopts.num_edges_hint = g.NumEdges();
    sopts.num_vertices_hint = g.NumVertices();
    EdgeRestreamOptions ropts;
    ropts.num_passes = 5;
    ropts.max_migration_fraction = 0.25;

    auto serial_part = MakeEdgePartitioner("hdrf", sopts);
    if (!serial_part.ok()) {
      std::cerr << serial_part.status().ToString() << "\n";
      return 1;
    }
    StreamCursor serial_cursor(stream);
    EdgeRestreamer serial_restreamer(&serial_cursor, ropts);
    const WallTimer serial_timer;
    auto serial_run = serial_restreamer.Run(serial_part->get());
    const double serial_seconds = serial_timer.ElapsedSeconds();
    if (!serial_run.ok()) {
      std::cerr << serial_run.status().ToString() << "\n";
      return 1;
    }
    double serial_restream = 0.0;
    for (const EdgeRestreamPassStats& pass : serial_run->passes) {
      if (pass.pass > 1) serial_restream += pass.seconds;
    }

    for (uint32_t shards = 1; shards <= threads; shards *= 2) {
      auto partitioner = MakeEdgePartitioner("hdrf", sopts);
      if (!partitioner.ok()) {
        std::cerr << partitioner.status().ToString() << "\n";
        return 1;
      }
      StreamCursor cursor(stream);
      EdgeRestreamer restreamer(&cursor, ropts);
      const WallTimer timer;
      auto run = restreamer.RunSharded(partitioner->get(), shards);
      const double seconds = timer.ElapsedSeconds();
      if (!run.ok()) {
        std::cerr << run.status().ToString() << "\n";
        return 1;
      }
      double critical = 0.0;
      double restream_critical = 0.0;
      for (const EdgeRestreamPassStats& pass : run->passes) {
        const double pass_critical = pass.critical_path_seconds > 0.0
                                         ? pass.critical_path_seconds
                                         : pass.seconds;
        critical += pass_critical;
        if (pass.pass > 1) restream_critical += pass_critical;
      }
      const bool equal = run->placements == serial_run->placements;
      sharded_table.AddRow(
          {GraphKindName(kind), std::to_string(shards),
           Fmt(run->replication_factor, 4), Fmt(run->balance),
           Fmt(seconds, 4), Fmt(critical, 4),
           Fmt(critical > 0.0 ? serial_seconds / critical : 0.0, 2),
           Fmt(restream_critical > 0.0 ? serial_restream / restream_critical
                                       : 0.0,
               2),
           shards == 1 ? (equal ? "yes" : "NO") : "-"});
      if (shards == 1 && !equal) {
        std::cerr << "bench_edge_partition: 1-shard restream diverged from "
                     "the serial driver\n";
        return 1;
      }
    }
  }

  table.Print(std::cout);
  std::cout << "\n";
  sharded_table.Print(std::cout);
  return 0;
}
