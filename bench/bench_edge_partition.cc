// Experiment E12: streaming edge partitioning (vertex-cut). HDRF's
// degree-aware scoring should replicate hub vertices and beat DBH's
// degree-based hashing on replication factor, most visibly on power-law
// graphs; lambda trades replication against balance; a budgeted restream
// pass should only ever improve the kept placement. The workload-heat
// variant biases replication toward motif-hot labels.

#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "common/table.h"
#include "common/timer.h"
#include "edge_partition/edge_partitioner.h"
#include "edge_partition/edge_restream.h"
#include "edge_partition/workload_heat.h"
#include "harness.h"
#include "stream/arrival_source.h"
#include "tpstry/tpstry_pp.h"

namespace {

std::string Fmt(double v, int precision = 3) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

}  // namespace

int main() {
  using namespace loom;
  using namespace loom::bench;

  const uint32_t n = 20000;
  const uint32_t k = 16;
  const uint32_t avg_degree = 6;

  TablePrinter table(
      "E12 streaming edge partitioning (n=" + std::to_string(n) +
          ", k=" + std::to_string(k) + ")",
      {"graph", "partitioner", "lambda", "rf", "balance", "edges/s",
       "fallbacks"});

  for (const GraphKind kind :
       {GraphKind::kErdosRenyi, GraphKind::kBarabasiAlbert}) {
    Rng rng(2024);
    const LabeledGraph g =
        MakeGraph(kind, n, avg_degree, LabelConfig{4, 0.3}, rng);
    const GraphStream stream = MakeStream(g, StreamOrder::kRandom, rng);

    struct Config {
      std::string name;
      double lambda;
      uint32_t passes;
      double heat_weight;
    };
    const std::vector<Config> configs = {
        {"hdrf", 0.0, 1, 0.0},  {"hdrf", 1.0, 1, 0.0},
        {"hdrf", 4.0, 1, 0.0},  {"hdrf", 1.0, 2, 0.0},
        {"hdrf", 1.0, 1, 1.0},  {"dbh", 1.0, 1, 0.0},
    };

    // Motif-heat table for the workload-aware variant: a small mixed
    // workload over the same label alphabet.
    WorkloadGenOptions wopts;
    wopts.num_queries = 4;
    wopts.seed = 5;
    const Workload workload = MixedMotifWorkload(wopts);
    TpstryPP trie(4);
    for (const QuerySpec& q : workload.queries()) {
      (void)trie.AddQuery(q.pattern, q.frequency);
    }
    const std::vector<double> heat = LabelHeatFromTrie(trie);

    for (const Config& config : configs) {
      EdgePartitionerOptions eopts;
      eopts.k = k;
      eopts.lambda = config.lambda;
      eopts.num_edges_hint = g.NumEdges();
      eopts.num_vertices_hint = g.NumVertices();
      eopts.heat_weight = config.heat_weight;
      if (config.heat_weight > 0.0) eopts.heat = MakeLabelHeatFn(heat);

      auto partitioner = MakeEdgePartitioner(config.name, eopts);
      if (!partitioner.ok()) {
        std::cerr << partitioner.status().ToString() << "\n";
        return 1;
      }

      StreamCursor cursor(stream);
      EdgeRestreamOptions ropts;
      ropts.num_passes = config.passes;
      EdgeRestreamer restreamer(&cursor, ropts);
      const WallTimer timer;
      auto run = restreamer.Run(partitioner->get());
      const double seconds = timer.ElapsedSeconds();
      if (!run.ok()) {
        std::cerr << run.status().ToString() << "\n";
        return 1;
      }

      const EdgePartitionerStats& stats = (*partitioner)->stats();
      std::string name = config.name;
      if (config.passes > 1) name += "+restream";
      if (config.heat_weight > 0.0) name += "+heat";
      table.AddRow(
          {GraphKindName(kind), name, Fmt(config.lambda, 1),
           Fmt(run->replication_factor, 4), Fmt(run->balance),
           Fmt(static_cast<double>(stats.edges_assigned) *
                   static_cast<double>(config.passes) / seconds,
               0),
           std::to_string(stats.overflow_fallbacks + stats.cap_relaxations)});
    }
  }

  table.Print(std::cout);
  return 0;
}
