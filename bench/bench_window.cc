// Experiment E4 (DESIGN.md §3): stream-window size sweep for LOOM. Expected
// shape: larger windows capture more motif matches (more vertices assigned
// as clusters, better answer locality) with diminishing returns and rising
// per-vertex cost; W=1 degenerates towards plain LDG.

#include <iostream>

#include "common/table.h"
#include "harness.h"

int main() {
  using namespace loom;
  using namespace loom::bench;

  const uint32_t n = 20000;
  const uint32_t k = 8;

  WorkloadGenOptions wopts;
  wopts.num_queries = 4;
  wopts.seed = 5;
  Workload workload = MixedMotifWorkload(wopts);

  Rng rng(42);
  LabeledGraph g =
      MakeGraph(GraphKind::kBarabasiAlbert, n, 6, LabelConfig{4, 0.4}, rng);
  PlantWorkloadMotifs(&g, workload, n / 24, rng, /*locality_span=*/48);
  const GraphStream stream = MakeStream(g, StreamOrder::kNatural, rng);

  TablePrinter table(
      "E4 window-size sweep, loom (n=" + std::to_string(g.NumVertices()) +
          ", k=" + std::to_string(k) + ")",
      {"window", "ipt-prob", "1-part", "emb-cut", "cluster-vertices",
       "sec"});

  for (const size_t window : {1u, 16u, 64u, 256u, 1024u, 4096u}) {
    PartitionerOptions popts;
    popts.k = k;
    popts.num_vertices_hint = g.NumVertices();
    popts.num_edges_hint = g.NumEdges();
    popts.window_size = window;

    LoomOptions lopts;
    lopts.partitioner = popts;
    lopts.matcher.frequency_threshold = 0.2;
    auto loom = Loom::Create(workload, lopts);
    if (!loom.ok()) {
      std::cerr << loom.status().ToString() << "\n";
      return 1;
    }
    const RunResult r =
        RunStreaming(&(*loom)->Partitioner(), g, stream, workload);
    table.AddRow(
        {std::to_string(window), FormatPercent(r.ipt.ipt_probability),
         FormatPercent(r.ipt.single_partition_fraction),
         FormatPercent(r.ipt.embedding_cut_fraction),
         std::to_string((*loom)->Partitioner().loom_stats().cluster_vertices),
         FormatDouble(r.seconds)});
  }
  table.Print(std::cout);
  std::cout << "\nExpected shape: cluster capture and answer locality grow "
               "with W, flattening once W covers motif arrival spans.\n";
  return 0;
}
