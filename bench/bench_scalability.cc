// Experiment E6 (DESIGN.md §3): one-pass scalability. Streaming partitioners
// touch each element once (§3.1), so throughput should be flat in n; LOOM
// pays a bounded constant factor for the matcher; the offline multilevel
// baseline holds the whole graph in memory and scales worse.

#include <iostream>

#include "common/table.h"
#include "common/timer.h"
#include "harness.h"

int main() {
  using namespace loom;
  using namespace loom::bench;

  const uint32_t k = 8;

  WorkloadGenOptions wopts;
  wopts.num_queries = 4;
  wopts.seed = 5;
  Workload workload = MixedMotifWorkload(wopts);

  TablePrinter table("E6 scalability: stream throughput (vertices/s)",
                     {"n", "m", "hash", "ldg", "fennel", "loom",
                      "metis-like(s)", "loom(s)"});

  for (const uint32_t n : {10000u, 50000u, 100000u, 200000u, 400000u}) {
    Rng rng(9);
    LabeledGraph g =
        MakeGraph(GraphKind::kBarabasiAlbert, n, 6, LabelConfig{4, 0.4}, rng);
    PlantWorkloadMotifs(&g, workload, n / 24, rng, /*locality_span=*/48);
    const GraphStream stream = MakeStream(g, StreamOrder::kNatural, rng);

    PartitionerOptions popts;
    popts.k = k;
    popts.num_vertices_hint = g.NumVertices();
    popts.num_edges_hint = g.NumEdges();
    popts.window_size = 1024;

    auto throughput = [&](StreamingPartitioner* p) {
      WallTimer timer;
      p->Run(stream);
      return std::make_pair(
          static_cast<double>(g.NumVertices()) / timer.ElapsedSeconds(),
          timer.ElapsedSeconds());
    };

    auto hash = MakePartitioner("hash", popts);
    auto ldg = MakePartitioner("ldg", popts);
    auto fennel = MakePartitioner("fennel", popts);
    if (!hash.ok() || !ldg.ok() || !fennel.ok()) return 1;
    LoomOptions lopts;
    lopts.partitioner = popts;
    lopts.matcher.frequency_threshold = 0.2;
    auto loom = Loom::Create(workload, lopts);
    if (!loom.ok()) return 1;

    const auto [tp_hash, s_hash] = throughput(hash->get());
    const auto [tp_ldg, s_ldg] = throughput(ldg->get());
    const auto [tp_fennel, s_fennel] = throughput(fennel->get());
    const auto [tp_loom, s_loom] = throughput(&(*loom)->Partitioner());

    WallTimer offline_timer;
    OfflineOptions oopts;
    oopts.k = k;
    auto off = OfflineMultilevelPartition(g, oopts);
    const double s_off = offline_timer.ElapsedSeconds();
    if (!off.ok()) return 1;

    auto fmt_tp = [](double tp) {
      return FormatDouble(tp / 1e6, 2) + "M";
    };
    table.AddRow({std::to_string(g.NumVertices()),
                  std::to_string(g.NumEdges()), fmt_tp(tp_hash),
                  fmt_tp(tp_ldg), fmt_tp(tp_fennel), fmt_tp(tp_loom),
                  FormatDouble(s_off, 3), FormatDouble(s_loom, 3)});
  }
  table.Print(std::cout);
  std::cout << "\nExpected shape: streaming throughputs roughly flat in n; "
               "loom a bounded constant factor below ldg; offline wall time "
               "grows superlinearly in practice.\n";
  return 0;
}
