// Microbenchmarks (google-benchmark): per-operation costs of the hot paths —
// signature updates, TPSTry++ construction/lookup, LDG placement, window
// churn, stream matching, and full partitioner passes.

#include <benchmark/benchmark.h>

#include "core/loom.h"
#include "graph/generators.h"
#include "matching/stream_matcher.h"
#include "motif/canonical.h"
#include "motif/signature.h"
#include "partition/gain_scorer.h"
#include "partition/ldg_partitioner.h"
#include "partition/hash_partitioner.h"
#include "stream/stream.h"
#include "stream/window.h"
#include "workload/query_builders.h"
#include "workload/workload_gen.h"

namespace loom {
namespace {

void BM_SignatureMultiplyEdge(benchmark::State& state) {
  const SignatureScheme scheme(8);
  GraphSignature sig;
  Label a = 0;
  for (auto _ : state) {
    scheme.MultiplyEdge(&sig, a, (a + 3) % 8);
    a = (a + 1) % 8;
    if (sig.NumFactors() > 64) sig = GraphSignature();
  }
}
BENCHMARK(BM_SignatureMultiplyEdge);

void BM_SignatureDivides(benchmark::State& state) {
  const SignatureScheme scheme(4);
  const GraphSignature small = scheme.SignatureOf(PaperQ2());
  const GraphSignature big = scheme.SignatureOf(PaperFigure1Graph());
  for (auto _ : state) {
    benchmark::DoNotOptimize(small.Divides(big));
  }
}
BENCHMARK(BM_SignatureDivides);

void BM_CanonicalFormSmallMotif(benchmark::State& state) {
  const LabeledGraph q = PaperQ1();
  for (auto _ : state) {
    benchmark::DoNotOptimize(CanonicalForm(q));
  }
}
BENCHMARK(BM_CanonicalFormSmallMotif);

void BM_TrieConstruction(benchmark::State& state) {
  WorkloadGenOptions wopts;
  wopts.num_queries = static_cast<uint32_t>(state.range(0));
  const Workload w = MixedMotifWorkload(wopts);
  for (auto _ : state) {
    auto trie = BuildTrie(w);
    benchmark::DoNotOptimize(trie);
  }
}
BENCHMARK(BM_TrieConstruction)->Arg(2)->Arg(8)->Arg(32);

void BM_TrieSignatureLookup(benchmark::State& state) {
  const Workload w = PaperFigure1Workload();
  auto trie = BuildTrie(w);
  const GraphSignature sig = (*trie)->scheme().SignatureOf(PaperQ2());
  for (auto _ : state) {
    benchmark::DoNotOptimize((*trie)->FindBySignature(sig));
  }
}
BENCHMARK(BM_TrieSignatureLookup);

void BM_LdgPlacement(benchmark::State& state) {
  Rng rng(1);
  const LabeledGraph g =
      BarabasiAlbert(20000, 4, LabelConfig{4, 0.0}, rng);
  const GraphStream stream = MakeStream(g, StreamOrder::kRandom, rng);
  for (auto _ : state) {
    PartitionerOptions o;
    o.k = 16;
    o.num_vertices_hint = g.NumVertices();
    LdgPartitioner p(o);
    p.Run(stream);
    benchmark::DoNotOptimize(p.assignment().NumAssigned());
  }
  state.SetItemsProcessed(state.iterations() * g.NumVertices());
}
BENCHMARK(BM_LdgPlacement)->Unit(benchmark::kMillisecond);

void BM_HashPlacement(benchmark::State& state) {
  Rng rng(1);
  const LabeledGraph g =
      BarabasiAlbert(20000, 4, LabelConfig{4, 0.0}, rng);
  const GraphStream stream = MakeStream(g, StreamOrder::kRandom, rng);
  for (auto _ : state) {
    PartitionerOptions o;
    o.k = 16;
    o.num_vertices_hint = g.NumVertices();
    HashPartitioner p(o);
    p.Run(stream);
    benchmark::DoNotOptimize(p.assignment().NumAssigned());
  }
  state.SetItemsProcessed(state.iterations() * g.NumVertices());
}
BENCHMARK(BM_HashPlacement)->Unit(benchmark::kMillisecond);

void BM_WindowChurn(benchmark::State& state) {
  for (auto _ : state) {
    StreamWindow w(256);
    for (VertexId v = 0; v < 4096; ++v) {
      if (w.Full()) benchmark::DoNotOptimize(w.PopOldest());
      w.Push(v, v % 4, v > 0 ? std::vector<VertexId>{v - 1}
                             : std::vector<VertexId>{});
    }
    benchmark::DoNotOptimize(w.Size());
  }
  state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_WindowChurn);

void BM_ScoreVertices(benchmark::State& state) {
  // The blocked gain kernel (partition/gain_scorer.h): gather a 16-member
  // unit's weighted edges, flat-accumulate into k partitions, compact the
  // touched set — LOOM's per-unit scoring cost.
  const uint32_t k = 16;
  const uint32_t num_labels = 4;
  const uint32_t pool = 4096;
  const uint32_t unit_size = 16;
  const uint32_t degree = 8;
  BlockedGainScorer scorer;
  scorer.Configure(k, num_labels, /*use_weights=*/true,
                   /*untraversed_weight=*/0.05);
  for (Label a = 0; a < num_labels; ++a) {
    for (Label b = a; b < num_labels; ++b) {
      scorer.SetEdgeWeight(a, b, 0.1 + 0.05 * static_cast<double>(a + b));
    }
  }
  Rng rng(3);
  std::vector<Label> label_of(pool);
  std::vector<int32_t> part_of(pool);
  std::vector<VertexId> neighbors(pool);
  for (uint32_t v = 0; v < pool; ++v) {
    label_of[v] = static_cast<Label>(rng.UniformInt(0, num_labels - 1));
    part_of[v] = static_cast<int32_t>(rng.UniformInt(0, k)) - 1;
    neighbors[v] = static_cast<VertexId>(rng.UniformInt(0, pool - 1));
  }
  std::vector<double> scores(k, 0.0);
  uint32_t base = 0;
  for (auto _ : state) {
    scorer.BeginUnit();
    for (uint32_t m = 0; m < unit_size; ++m) {
      const uint32_t v = (base + m * 37) % pool;
      scorer.AddMember(
          label_of[v],
          Span<const VertexId>(neighbors.data() + v % (pool - degree), degree),
          label_of, [&](VertexId w) { return part_of[w]; });
    }
    scorer.Commit(&scores);
    base = (base + unit_size) % pool;
    benchmark::DoNotOptimize(scores.data());
  }
  state.SetItemsProcessed(state.iterations() * unit_size);
}
BENCHMARK(BM_ScoreVertices);

void BM_MatchClosure(benchmark::State& state) {
  // Closure extraction on a motif-planted stream through a 256-slot sliding
  // window — the per-eviction cost of LOOM's cluster path.
  Rng rng(4);
  LabeledGraph g = BarabasiAlbert(8000, 4, LabelConfig{3, 0.0}, rng);
  PlantMotifs(&g, TriangleQuery(0, 1, 2), 250, rng, 16);
  const GraphStream stream = MakeStream(g, StreamOrder::kRandom, rng);
  Workload w;
  (void)w.Add("tri", TriangleQuery(0, 1, 2), 1.0);
  w.Normalize();
  auto trie = BuildTrie(w);
  StreamMatcherOptions mopts;
  mopts.frequency_threshold = 0.3;
  const uint32_t window_size = 256;
  std::vector<uint8_t> in_window(g.NumVertices());
  std::vector<VertexId> ring(window_size);
  std::vector<VertexId> filtered;
  for (auto _ : state) {
    StreamMatcher m(trie->get(), mopts);
    std::fill(in_window.begin(), in_window.end(), 0);
    uint32_t live = 0;
    uint64_t count = 0;
    for (const VertexArrival& a : stream.arrivals()) {
      const uint32_t pos = static_cast<uint32_t>(count++ % window_size);
      if (live == window_size) {
        const VertexId victim = ring[pos];
        benchmark::DoNotOptimize(m.MatchClosureFor(victim));
        m.RemoveVertex(victim);
        in_window[victim] = 0;
        --live;
      }
      filtered.clear();
      for (const VertexId x : a.back_edges) {
        if (in_window[x]) filtered.push_back(x);
      }
      m.OnVertex(a.vertex, a.label, filtered);
      ring[pos] = a.vertex;
      in_window[a.vertex] = 1;
      ++live;
    }
  }
  state.SetItemsProcessed(state.iterations() * g.NumVertices());
}
BENCHMARK(BM_MatchClosure)->Unit(benchmark::kMillisecond);

void BM_StreamMatcherPass(benchmark::State& state) {
  Rng rng(2);
  LabeledGraph g = BarabasiAlbert(5000, 3, LabelConfig{3, 0.3}, rng);
  Workload w;
  (void)w.Add("abc", PathQuery({0, 1, 2}), 1.0);
  w.Normalize();
  PlantMotifs(&g, w.queries()[0].pattern, 200, rng, 16);
  const GraphStream stream = MakeStream(g, StreamOrder::kNatural, rng);
  auto trie = BuildTrie(w);
  for (auto _ : state) {
    StreamMatcherOptions mo;
    mo.frequency_threshold = 0.3;
    StreamMatcher m(trie->get(), mo);
    // Bounded window emulation: remove vertices 512 arrivals behind.
    for (size_t i = 0; i < stream.arrivals().size(); ++i) {
      const auto& a = stream.arrivals()[i];
      std::vector<VertexId> in_window;
      for (const VertexId x : a.back_edges) {
        if (i < 512 || x >= stream.arrivals()[i - 512].vertex) {
          in_window.push_back(x);
        }
      }
      m.OnVertex(a.vertex, a.label, in_window);
      if (i >= 512) m.RemoveVertex(stream.arrivals()[i - 512].vertex);
    }
    benchmark::DoNotOptimize(m.stats().growths_accepted);
  }
  state.SetItemsProcessed(state.iterations() * g.NumVertices());
}
BENCHMARK(BM_StreamMatcherPass)->Unit(benchmark::kMillisecond);

void BM_LoomFullPass(benchmark::State& state) {
  Rng rng(3);
  WorkloadGenOptions wopts;
  wopts.num_queries = 4;
  const Workload w = MixedMotifWorkload(wopts);
  LabeledGraph g = BarabasiAlbert(10000, 3, LabelConfig{4, 0.4}, rng);
  const GraphStream stream = MakeStream(g, StreamOrder::kNatural, rng);
  for (auto _ : state) {
    LoomOptions o;
    o.partitioner.k = 8;
    o.partitioner.num_vertices_hint = g.NumVertices();
    o.partitioner.window_size = static_cast<size_t>(state.range(0));
    o.matcher.frequency_threshold = 0.2;
    auto loom = Loom::Create(w, o);
    (*loom)->Partitioner().Run(stream);
    benchmark::DoNotOptimize(
        (*loom)->Partitioner().assignment().NumAssigned());
  }
  state.SetItemsProcessed(state.iterations() * g.NumVertices());
}
BENCHMARK(BM_LoomFullPass)->Arg(64)->Arg(512)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace loom

BENCHMARK_MAIN();
