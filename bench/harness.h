#ifndef LOOM_BENCH_HARNESS_H_
#define LOOM_BENCH_HARNESS_H_

/// \file
/// Shared experiment harness for the bench binaries (DESIGN.md §3): builds
/// graphs/workloads/streams, runs every partitioner under identical
/// conditions and renders the table rows each experiment reports.

#include <memory>
#include <string>
#include <vector>

#include "core/loom.h"
#include "core/partitioner_factory.h"
#include "graph/generators.h"
#include "metrics/metrics.h"
#include "partition/offline_partitioner.h"
#include "stream/stream.h"
#include "workload/query_engine.h"
#include "workload/workload_gen.h"

namespace loom {
namespace bench {

/// Named graph families used across experiments.
enum class GraphKind { kErdosRenyi, kBarabasiAlbert, kWattsStrogatz, kRMat };

std::string GraphKindName(GraphKind kind);

/// Builds a graph of `kind` with ~n vertices and average degree ~deg.
LabeledGraph MakeGraph(GraphKind kind, uint32_t n, uint32_t avg_degree,
                       const LabelConfig& labels, Rng& rng);

/// Plants `count` copies of every workload query pattern into `g`, making
/// the workload's motifs present at a controlled density. `locality_span`
/// follows PlantMotifs: instances drawn from that many consecutive ids are
/// temporally local under natural/stochastic stream orderings.
void PlantWorkloadMotifs(LabeledGraph* g, const Workload& workload,
                         uint32_t count_per_query, Rng& rng,
                         uint32_t locality_span = 64);

/// Result of one partitioner run.
struct RunResult {
  std::string partitioner;
  double seconds = 0.0;
  double cut_fraction = 0.0;
  double balance = 0.0;
  WorkloadIptStats ipt;
  size_t num_vertices = 0;
  size_t num_edges = 0;
};

/// Streams `stream` through `partitioner` and evaluates quality and the
/// workload ipt measures.
RunResult RunStreaming(StreamingPartitioner* partitioner,
                       const LabeledGraph& g, const GraphStream& stream,
                       const Workload& workload);

/// Runs the offline multilevel baseline on the full graph.
RunResult RunOffline(const LabeledGraph& g, const Workload& workload,
                     uint32_t k, double slack, uint64_t seed);

/// The standard comparison set: hash, ldg, fennel, ldg-buffered, loom
/// (+offline added by callers that want it). The returned Loom instances own
/// the tries the loom partitioners reference.
struct PartitionerSet {
  std::vector<std::unique_ptr<StreamingPartitioner>> streaming;
  std::vector<std::unique_ptr<Loom>> looms;

  /// Flat view over every partitioner in comparison order.
  std::vector<StreamingPartitioner*> All() {
    std::vector<StreamingPartitioner*> out;
    for (auto& p : streaming) out.push_back(p.get());
    for (auto& l : looms) out.push_back(&l->Partitioner());
    return out;
  }
};

/// Builds the comparison set for one configuration.
PartitionerSet MakeStandardSet(const PartitionerOptions& popts,
                               const Workload& workload,
                               double frequency_threshold);

}  // namespace bench
}  // namespace loom

#endif  // LOOM_BENCH_HARNESS_H_
