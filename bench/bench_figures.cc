// Experiments F1-F3 (DESIGN.md §3): executable reproductions of the paper's
// three figures, printed as human-checkable reports.

#include <iostream>
#include <set>

#include "common/table.h"
#include "core/loom.h"
#include "matching/stream_matcher.h"
#include "motif/isomorphism.h"
#include "stream/stream.h"
#include "workload/query_builders.h"
#include "workload/query_engine.h"

int main() {
  using namespace loom;

  // ----------------------------------------------------------------- F1
  {
    const LabeledGraph g = PaperFigure1Graph();
    TablePrinter table("F1: Figure 1 example — query answers over G",
                       {"query", "embeddings", "answer vertex sets (paper ids)"});
    const Workload w = PaperFigure1Workload();
    for (const QuerySpec& q : w.queries()) {
      std::set<std::set<VertexId>> sets;
      ForEachEmbedding(q.pattern, g, [&](const std::vector<VertexId>& m) {
        sets.insert(std::set<VertexId>(m.begin(), m.end()));
        return true;
      });
      std::string rendered;
      for (const auto& s : sets) {
        rendered += "{";
        bool first = true;
        for (const VertexId v : s) {
          if (!first) rendered += ",";
          first = false;
          rendered += std::to_string(v + 1);  // paper ids are 1-based
        }
        rendered += "} ";
      }
      table.AddRow({q.name, std::to_string(sets.size()), rendered});
    }
    table.Print(std::cout);
    std::cout << "Paper check: q1's single answer is {1,2,5,6}.\n";
  }

  // ----------------------------------------------------------------- F2
  {
    LoomOptions o;
    o.partitioner.k = 2;
    o.partitioner.num_vertices_hint = 8;
    auto loom = Loom::Create(PaperFigure1Workload(), o);
    if (!loom.ok()) return 1;
    const TpstryPP& trie = (*loom)->Trie();
    TablePrinter table("F2: TPSTry++ for Q of Figure 1",
                       {"edges", "vertices", "p-value", "children"});
    for (TpstryNodeId id = 0; id < trie.NumNodes(); ++id) {
      const TpstryNode& n = trie.node(id);
      std::string children;
      for (size_t i = 0; i < n.children.size(); ++i) {
        if (i) children += ",";
        children += std::to_string(n.children[i]);
      }
      table.AddRow({std::to_string(n.num_edges),
                    std::to_string(n.num_vertices), FormatDouble(n.support),
                    children});
    }
    table.Print(std::cout);
    std::cout << "Paper check: 14 motif nodes; roots a,b,c,d; every node's "
                 "children add exactly one edge (Fig. 2 lattice).\n";
  }

  // ----------------------------------------------------------------- F3
  {
    Workload w;
    (void)w.Add("abc", PathQuery({kLabelA, kLabelB, kLabelC}), 1.0);
    w.Normalize();
    auto trie = BuildTrie(w);
    if (!trie.ok()) return 1;

    TablePrinter table("F3: Figure 3 stream-matching scenario",
                       {"re-grow", "matches found", "second abc found"});
    for (const bool regrow : {false, true}) {
      StreamMatcherOptions mo;
      mo.frequency_threshold = 0.5;
      mo.use_regrow = regrow;
      mo.verify_exact = true;
      StreamMatcher m(trie->get(), mo);
      m.OnVertex(0, kLabelA, {});
      m.OnVertex(1, kLabelB, {0});
      m.OnVertex(2, kLabelC, {1});
      m.OnVertex(3, kLabelC, {1});  // the Fig. 3 update
      const auto sets = m.FrequentMatchVertexSets();
      bool second = false;
      for (const auto& s : sets) {
        if (s == std::vector<VertexId>{0, 1, 3}) second = true;
      }
      table.AddRow({regrow ? "on" : "off", std::to_string(sets.size()),
                    second ? "yes" : "NO (risk described in §4.3)"});
    }
    table.Print(std::cout);
    std::cout << "Paper check: without re-grow the second abc instance is "
                 "invisible; the incremental re-computation recovers it.\n";
  }
  return 0;
}
