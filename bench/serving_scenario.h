#ifndef LOOM_BENCH_SERVING_SCENARIO_H_
#define LOOM_BENCH_SERVING_SCENARIO_H_

/// \file
/// The concurrent serving scenario shared by `bench_serving`, the `serving`
/// section of `BENCH_edge_cut.json` (tools/run_benchmarks) and
/// `tests/serving_test.cc` — one definition of the workload the numbers CI
/// validates are measured on.
///
/// Shape: a `loom::Service` built for workload A fronts a graph planted
/// with the motifs of workloads A and B. An open-loop ingest driver streams
/// the graph in batches at a configured arrival rate (batch latency is
/// measured from each batch's *scheduled* send time to its pipeline
/// completion, so queueing delay is charged honestly — no coordinated
/// omission), while N client threads hammer `Locate`/`Touches` and feed
/// `ObserveQuery`. Halfway through ingest the query mix flips from A to B;
/// the drift loop fires and runs its bounded-migration reaction on the
/// pipeline worker while the clients keep reading. The scenario reports
/// tail latencies (p50/p99/p999) for ingest batches and both query kinds,
/// plus how many queries were answered *while the reaction ran* — the
/// lock-free-reads claim, measured.

#include <cstdint>
#include <vector>

#include "harness.h"
#include "serving/service.h"

namespace loom {
namespace bench {

/// Scenario knobs; defaults are the fast-mode configuration recorded in
/// BENCH_edge_cut.json.
struct ServingScenarioConfig {
  uint32_t n = 6000;
  uint32_t k = 8;
  uint32_t avg_degree = 6;
  uint64_t seed = 2026;
  /// Arrival order of the ingested stream (DFS models a crawl feed).
  StreamOrder stream_order = StreamOrder::kDfs;
  size_t window_size = 128;
  double frequency_threshold = 0.2;

  /// Arrivals per Ingest batch.
  uint32_t batch_size = 128;
  /// Open-loop arrival rate; batch i is *scheduled* at
  /// start + i * batch_size / rate regardless of how the service keeps up.
  double arrivals_per_second = 100000.0;
  /// Client threads issuing Locate/Touches/ObserveQuery concurrently.
  uint32_t num_clients = 4;
  /// Share of client operations that are Locate (the rest are
  /// Touches + ObserveQuery pairs).
  double locate_fraction = 0.7;

  /// Service knobs (see ServiceOptions).
  uint32_t front_end_shards = 2;
  uint32_t publish_every_batches = 1;
  uint64_t drift_check_every_queries = 64;
  size_t tracker_window = 128;
  double max_migration_fraction = 0.25;
  uint32_t reaction_passes = 2;
  uint32_t reaction_shards = 2;

  /// How long to keep the clients querying after ingest completes while
  /// waiting for the drift reaction; expiring marks the result not ok.
  double reaction_wait_seconds = 30.0;
};

/// p50/p99/p999 of one latency population, in seconds.
struct LatencySummary {
  uint64_t count = 0;
  double p50_seconds = 0.0;
  double p99_seconds = 0.0;
  double p999_seconds = 0.0;
};

/// Sorts `samples` in place and reads the percentiles (empty-safe).
LatencySummary Summarize(std::vector<double>* samples);

/// Everything the bench table, the JSON section and the tests consume.
struct ServingScenarioResult {
  /// True iff ingest completed, the drift reaction ran, queries were
  /// answered during it, and the partitioner reported zero assign errors.
  bool ok = false;

  // --- ingest ---
  uint64_t ingested_vertices = 0;
  uint64_t ingested_batches = 0;
  double ingest_seconds = 0.0;
  double vertices_per_second = 0.0;
  /// Scheduled-send → pipeline-completion latency per batch.
  LatencySummary ingest_batch_latency;

  // --- queries ---
  uint64_t locate_queries = 0;
  uint64_t touches_queries = 0;
  uint64_t observed_queries = 0;
  /// Queries answered while the reaction task held the pipeline worker.
  uint64_t queries_during_reaction = 0;
  LatencySummary locate_latency;
  LatencySummary touches_latency;

  // --- drift loop ---
  uint64_t drift_fires = 0;
  uint64_t drift_reactions = 0;
  double reaction_cut_before = 0.0;
  double reaction_cut_after = 0.0;
  double reaction_migration = 0.0;
  double reaction_seconds = 0.0;

  // --- integrity ---
  uint64_t assign_errors = 0;
  uint64_t snapshots_published = 0;
  uint64_t snapshot_epoch = 0;
};

/// Runs the scenario end to end. Latencies are machine-dependent; the
/// structural outcomes (reaction fired, zero assign errors, queries served
/// throughout) are not.
ServingScenarioResult RunServingScenario(const ServingScenarioConfig& config);

}  // namespace bench
}  // namespace loom

#endif  // LOOM_BENCH_SERVING_SCENARIO_H_
