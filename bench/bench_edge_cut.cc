// Experiment E1 (DESIGN.md §3): classic edge-cut fraction by partitioner and
// graph family. Expected shape (paper §4.1 and §3.1):
//   hash ~ (k-1)/k;  LDG cuts far fewer (the paper cites "up to 90%" less
//   on favourable graphs);  Fennel ~ LDG;  offline multilevel <= streaming.

#include <iostream>

#include "common/table.h"
#include "harness.h"

int main() {
  using namespace loom;
  using namespace loom::bench;

  const uint32_t n = 30000;
  const uint32_t k = 8;

  // A small workload only to satisfy the harness; E1's metric is edge-cut.
  WorkloadGenOptions wopts;
  wopts.num_queries = 3;
  Workload workload = PathWorkload(wopts);

  TablePrinter table(
      "E1 edge-cut fraction by partitioner x graph (n~" + std::to_string(n) +
          ", k=" + std::to_string(k) + ")",
      {"graph", "hash", "ldg", "fennel", "loom", "metis-like",
       "ldg-vs-hash-reduction"});

  for (const GraphKind kind :
       {GraphKind::kErdosRenyi, GraphKind::kBarabasiAlbert,
        GraphKind::kWattsStrogatz, GraphKind::kRMat}) {
    Rng rng(2024);
    LabeledGraph g = MakeGraph(kind, n, 8, LabelConfig{4, 0.3}, rng);
    const GraphStream stream = MakeStream(g, StreamOrder::kRandom, rng);

    PartitionerOptions popts;
    popts.k = k;
    popts.num_vertices_hint = g.NumVertices();
    popts.num_edges_hint = g.NumEdges();

    PartitionerSet set = MakeStandardSet(popts, workload, 0.3);
    double cut_hash = 0.0;
    double cut_ldg = 0.0;
    double cut_fennel = 0.0;
    double cut_loom = 0.0;
    for (StreamingPartitioner* p : set.All()) {
      const RunResult r = RunStreaming(p, g, stream, workload);
      if (r.partitioner == "hash") cut_hash = r.cut_fraction;
      if (r.partitioner == "ldg") cut_ldg = r.cut_fraction;
      if (r.partitioner == "fennel") cut_fennel = r.cut_fraction;
      if (r.partitioner == "loom") cut_loom = r.cut_fraction;
    }
    const RunResult off = RunOffline(g, workload, k, 1.1, 7);

    table.AddRow({GraphKindName(kind), FormatPercent(cut_hash),
                  FormatPercent(cut_ldg), FormatPercent(cut_fennel),
                  FormatPercent(cut_loom), FormatPercent(off.cut_fraction),
                  FormatPercent(1.0 - cut_ldg / cut_hash)});
  }
  table.Print(std::cout);
  std::cout << "\nExpected shape: hash ~ " << FormatPercent((k - 1.0) / k)
            << "; neighbour-aware heuristics well below; offline lowest on "
               "structured graphs.\n";
  return 0;
}
