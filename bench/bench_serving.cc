// Concurrent serving under drift: a loom::Service ingests an open-loop
// arrival stream in batches while N client threads issue Locate/Touches
// against the published placement snapshot and feed ObserveQuery. Halfway
// through ingest the query mix flips from workload A to workload B; the
// drift loop fires and runs its bounded-migration reaction on the pipeline
// worker while the clients keep reading from the immutable snapshot — the
// table reports the tail latencies (p50/p99/p999) that design buys, and how
// many queries were answered *during* the reaction (the lock-free-reads
// claim, measured).
//
// Open-loop means batch i is *scheduled* at start + i*batch/rate and its
// latency is measured from that scheduled time, so a slow pipeline is
// charged its queueing delay instead of silently slowing the load generator
// (no coordinated omission).

#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "common/table.h"
#include "serving_scenario.h"

int main(int argc, char** argv) {
  using namespace loom;
  using namespace loom::bench;

  ServingScenarioConfig config;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--full") == 0) {
      config.n = 20000;
    } else if (std::strcmp(argv[i], "--fast") == 0) {
      // defaults
    } else if (std::strcmp(argv[i], "--clients") == 0 && i + 1 < argc) {
      config.num_clients =
          static_cast<uint32_t>(std::atoi(argv[++i]));
      if (config.num_clients == 0) config.num_clients = 1;
    } else if (std::strcmp(argv[i], "--rate") == 0 && i + 1 < argc) {
      config.arrivals_per_second = std::atof(argv[++i]);
      if (config.arrivals_per_second <= 0.0) {
        config.arrivals_per_second = 100000.0;
      }
    } else if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
      config.front_end_shards =
          static_cast<uint32_t>(std::atoi(argv[++i]));
      if (config.front_end_shards == 0) config.front_end_shards = 1;
    } else {
      std::cerr << "usage: bench_serving [--fast|--full] [--clients N] "
                   "[--rate ARRIVALS_PER_S] [--shards N]\n";
      return 2;
    }
  }

  const ServingScenarioResult r = RunServingScenario(config);
  if (!r.ok) {
    std::cerr << "serving scenario failed: reactions=" << r.drift_reactions
              << " assign_errors=" << r.assign_errors
              << " ingested=" << r.ingested_vertices << "\n";
    return 1;
  }

  std::cout << "Ingest: " << r.ingested_vertices << " vertices in "
            << r.ingested_batches << " batches, "
            << FormatDouble(r.vertices_per_second / 1e3, 1)
            << "k vertices/s effective\n";
  std::cout << "Drift: fires=" << r.drift_fires
            << " reactions=" << r.drift_reactions << ", cut "
            << FormatPercent(r.reaction_cut_before) << " -> "
            << FormatPercent(r.reaction_cut_after) << " at migration "
            << FormatPercent(r.reaction_migration) << " in "
            << FormatDouble(r.reaction_seconds, 3) << "s\n";
  std::cout << "Queries answered during the reaction: "
            << r.queries_during_reaction << " (reads never blocked)\n\n";

  const auto us = [](double seconds) {
    return FormatDouble(seconds * 1e6, 1);
  };
  TablePrinter table(
      "Serving tail latency (" + std::to_string(config.num_clients) +
          " clients, open-loop ingest at " +
          FormatDouble(config.arrivals_per_second / 1e3, 0) +
          "k arrivals/s, k=" + std::to_string(config.k) + ")",
      {"operation", "count", "p50 us", "p99 us", "p999 us"});
  table.AddRow({"ingest batch", std::to_string(r.ingest_batch_latency.count),
                us(r.ingest_batch_latency.p50_seconds),
                us(r.ingest_batch_latency.p99_seconds),
                us(r.ingest_batch_latency.p999_seconds)});
  table.AddRow({"locate", std::to_string(r.locate_latency.count),
                us(r.locate_latency.p50_seconds),
                us(r.locate_latency.p99_seconds),
                us(r.locate_latency.p999_seconds)});
  table.AddRow({"touches", std::to_string(r.touches_latency.count),
                us(r.touches_latency.p50_seconds),
                us(r.touches_latency.p99_seconds),
                us(r.touches_latency.p999_seconds)});
  table.Print(std::cout);

  std::cout << "\nExpected shape: locate p50 well under a microsecond (one "
               "acquire load + array read); touches within a small factor; "
               "p999 bounded by scheduler noise, not by the reaction — "
               "queries_during_reaction > 0 shows reads proceeding while "
               "the pipeline worker repartitions.\n";
  return 0;
}
