#include "serving_scenario.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <thread>
#include <utility>

#include "workload/query_builders.h"

namespace loom {
namespace bench {

namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

// Pre-drift traffic: label-{0,1} paths and cycles (matches the drift
// scenario, so the two benches exercise the same drift).
Workload WorkloadA() {
  Workload w;
  (void)w.Add("a-path", PathQuery({0, 1, 0}), 2.0);
  (void)w.Add("a-cycle", CycleQuery({0, 1, 0, 1}), 1.0);
  w.Normalize();
  return w;
}

// Post-drift traffic: label-{2,3} triangles and stars.
Workload WorkloadB() {
  Workload w;
  (void)w.Add("b-tri", TriangleQuery(2, 3, 2), 2.0);
  (void)w.Add("b-star", StarQuery(3, {2, 2}), 1.0);
  w.Normalize();
  return w;
}

double Percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const double rank = q * static_cast<double>(sorted.size());
  size_t index = static_cast<size_t>(std::ceil(rank));
  if (index > 0) --index;
  if (index >= sorted.size()) index = sorted.size() - 1;
  return sorted[index];
}

/// Per-client tallies, merged after join.
struct ClientLog {
  std::vector<double> locate_seconds;
  std::vector<double> touches_seconds;
  uint64_t during_reaction = 0;
};

}  // namespace

LatencySummary Summarize(std::vector<double>* samples) {
  LatencySummary summary;
  std::sort(samples->begin(), samples->end());
  summary.count = samples->size();
  summary.p50_seconds = Percentile(*samples, 0.50);
  summary.p99_seconds = Percentile(*samples, 0.99);
  summary.p999_seconds = Percentile(*samples, 0.999);
  return summary;
}

ServingScenarioResult RunServingScenario(const ServingScenarioConfig& config) {
  ServingScenarioResult result;

  const Workload workload_a = WorkloadA();
  const Workload workload_b = WorkloadB();

  // Data graph carrying BOTH workloads' structures, streamed once.
  Rng rng(config.seed);
  LabeledGraph g = MakeGraph(GraphKind::kBarabasiAlbert, config.n,
                             config.avg_degree, LabelConfig{4, 0.2}, rng);
  PlantWorkloadMotifs(&g, workload_a, config.n / 24, rng,
                      /*locality_span=*/48);
  PlantWorkloadMotifs(&g, workload_b, config.n / 24, rng,
                      /*locality_span=*/48);
  const GraphStream stream = MakeStream(g, config.stream_order, rng);

  ServiceOptions opts;
  opts.loom.partitioner.k = config.k;
  opts.loom.partitioner.num_vertices_hint = g.NumVertices();
  opts.loom.partitioner.num_edges_hint = g.NumEdges();
  opts.loom.partitioner.window_size = config.window_size;
  opts.loom.matcher.frequency_threshold = config.frequency_threshold;
  opts.num_labels = 4;
  opts.front_end_shards = config.front_end_shards;
  opts.publish_every_batches = config.publish_every_batches;
  opts.drift_check_every_queries = config.drift_check_every_queries;
  opts.tracker.window_queries = config.tracker_window;
  opts.drift.max_migration_fraction = config.max_migration_fraction;
  opts.drift.reaction_passes = config.reaction_passes;
  opts.drift.reaction_shards = config.reaction_shards;
  opts.drift.seed = config.seed;

  const std::vector<VertexArrival>& arrivals = stream.arrivals();
  const uint64_t num_batches =
      (arrivals.size() + config.batch_size - 1) / config.batch_size;

  // Completion stamp per batch, written by the pipeline thread.
  std::vector<Clock::time_point> completed(num_batches);
  std::atomic<uint64_t> batches_completed{0};
  opts.on_batch_processed = [&](uint64_t seq) {
    completed[seq] = Clock::now();
    batches_completed.fetch_add(1, std::memory_order_release);
  };

  auto created = Service::Create(workload_a, opts);
  if (!created.ok()) return result;  // impossible for the fixed workloads
  Service& service = **created;

  // Client threads: Locate / (Touches + ObserveQuery) mix, phase-flipped
  // from A-patterns to B-patterns when half the batches have been sent.
  std::atomic<bool> stop{false};
  std::atomic<bool> phase_b{false};
  std::vector<ClientLog> logs(config.num_clients);
  std::vector<std::thread> clients;
  clients.reserve(config.num_clients);
  for (uint32_t c = 0; c < config.num_clients; ++c) {
    clients.emplace_back([&, c] {
      Rng crng(config.seed + 101 + c);
      ClientLog& log = logs[c];
      while (!stop.load(std::memory_order_acquire)) {
        const Workload& w = phase_b.load(std::memory_order_acquire)
                                ? workload_b
                                : workload_a;
        const LabeledGraph& pattern =
            w.queries()[w.SampleIndex(crng)].pattern;
        if (crng.UniformDouble() < config.locate_fraction) {
          const VertexId v = static_cast<VertexId>(
              crng.UniformInt(0, g.NumVertices() - 1));
          const Clock::time_point begin = Clock::now();
          (void)service.Locate(v);
          log.locate_seconds.push_back(SecondsSince(begin));
        } else {
          const Clock::time_point begin = Clock::now();
          (void)service.Touches(pattern);
          log.touches_seconds.push_back(SecondsSince(begin));
          (void)service.ObserveQuery(pattern);
        }
        if (service.Stats().reaction_running) ++log.during_reaction;
      }
    });
  }

  // Open-loop ingest: batch i is due at start + i * batch / rate; send time
  // never slips because the service is slow — that queueing delay is the
  // latency being measured.
  const double batch_interval =
      static_cast<double>(config.batch_size) / config.arrivals_per_second;
  const Clock::time_point start = Clock::now();
  bool ingest_ok = true;
  for (uint64_t i = 0; i < num_batches; ++i) {
    const double due = static_cast<double>(i) * batch_interval;
    for (double now = SecondsSince(start); now < due;
         now = SecondsSince(start)) {
      std::this_thread::sleep_for(
          std::chrono::duration<double>(due - now));
    }
    const size_t offset = static_cast<size_t>(i) * config.batch_size;
    const size_t count =
        std::min<size_t>(config.batch_size, arrivals.size() - offset);
    if (!service.Ingest(arrivals.data() + offset, count).ok()) {
      ingest_ok = false;
      break;
    }
    if (i + 1 == num_batches / 2) {
      phase_b.store(true, std::memory_order_release);
    }
  }
  service.Flush();
  result.ingest_seconds = SecondsSince(start);

  // Scheduled-send -> completion latency per batch.
  std::vector<double> batch_latency;
  if (ingest_ok) {
    batch_latency.reserve(num_batches);
    for (uint64_t i = 0; i < num_batches; ++i) {
      const double due = static_cast<double>(i) * batch_interval;
      batch_latency.push_back(
          std::chrono::duration<double>(completed[i] - start).count() - due);
    }
  }

  // Keep the clients querying (B-phase) until the reaction lands.
  const Clock::time_point wait_start = Clock::now();
  while (service.Stats().drift_reactions == 0 &&
         SecondsSince(wait_start) < config.reaction_wait_seconds) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  stop.store(true, std::memory_order_release);
  for (std::thread& t : clients) t.join();
  (void)service.Seal();

  const ServiceStats stats = service.Stats();
  result.ingested_vertices = stats.ingested_vertices;
  result.ingested_batches = stats.ingested_batches;
  result.vertices_per_second =
      result.ingest_seconds > 0.0
          ? static_cast<double>(stats.ingested_vertices) /
                result.ingest_seconds
          : 0.0;
  result.ingest_batch_latency = Summarize(&batch_latency);

  std::vector<double> locate_samples;
  std::vector<double> touches_samples;
  for (ClientLog& log : logs) {
    locate_samples.insert(locate_samples.end(), log.locate_seconds.begin(),
                          log.locate_seconds.end());
    touches_samples.insert(touches_samples.end(),
                           log.touches_seconds.begin(),
                           log.touches_seconds.end());
    result.queries_during_reaction += log.during_reaction;
  }
  result.locate_latency = Summarize(&locate_samples);
  result.touches_latency = Summarize(&touches_samples);
  result.locate_queries = stats.locate_queries;
  result.touches_queries = stats.touches_queries;
  result.observed_queries = stats.observed_queries;

  result.drift_fires = stats.drift_fires;
  result.drift_reactions = stats.drift_reactions;
  result.reaction_cut_before = stats.last_reaction_edge_cut_before;
  result.reaction_cut_after = stats.last_reaction_edge_cut_after;
  result.reaction_migration = stats.last_reaction_migration_fraction;
  result.reaction_seconds = stats.last_reaction_seconds;

  result.assign_errors = stats.assign_errors;
  result.snapshots_published = stats.snapshots_published;
  result.snapshot_epoch = stats.snapshot_epoch;

  result.ok = ingest_ok && stats.ingested_vertices == arrivals.size() &&
              stats.drift_reactions >= 1 && stats.assign_errors == 0 &&
              result.locate_queries > 0 && result.touches_queries > 0;
  return result;
}

}  // namespace bench
}  // namespace loom
