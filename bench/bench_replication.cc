// Experiment E11 (extension, paper §3.2): hotspot replication on top of each
// partitioner, after Yang et al. [21]. The paper argues a workload-aware
// *initial* partitioning complements replication — replication then spends
// its budget on genuinely hot crossings instead of compensating for a
// workload-blind layout. Expected shape: replication lowers ipt for every
// layout; loom+replication is the best combination; loom needs a smaller
// budget for the same ipt.

#include <iostream>

#include "common/table.h"
#include "harness.h"
#include "replication/hotspot.h"

int main() {
  using namespace loom;
  using namespace loom::bench;

  const uint32_t n = 20000;
  const uint32_t k = 8;

  WorkloadGenOptions wopts;
  wopts.num_queries = 4;
  wopts.seed = 5;
  Workload workload = MixedMotifWorkload(wopts);

  Rng rng(55);
  LabeledGraph g =
      MakeGraph(GraphKind::kBarabasiAlbert, n, 6, LabelConfig{4, 0.4}, rng);
  PlantWorkloadMotifs(&g, workload, n / 24, rng, /*locality_span=*/48);
  const GraphStream stream = MakeStream(g, StreamOrder::kNatural, rng);

  PartitionerOptions popts;
  popts.k = k;
  popts.num_vertices_hint = g.NumVertices();
  popts.num_edges_hint = g.NumEdges();
  popts.window_size = 1024;

  TablePrinter table(
      "E11 hotspot replication x partitioner (n=" +
          std::to_string(g.NumVertices()) + ", k=" + std::to_string(k) + ")",
      {"partitioner", "replica-budget", "replicas", "ipt-prob", "1-part",
       "emb-cut"});

  PartitionerSet set = MakeStandardSet(popts, workload, 0.2);
  for (StreamingPartitioner* p : set.All()) {
    if (p->Name() == "ldg-buffered" || p->Name() == "fennel") continue;
    p->Run(stream);
    for (const double budget : {0.0, 0.02, 0.05, 0.10}) {
      ReplicationOptions ropts;
      ropts.budget_fraction = budget;
      ReplicationStats rstats;
      const ReplicaSet replicas =
          budget > 0.0
              ? ComputeHotspotReplicas(g, p->assignment(), workload, ropts,
                                       &rstats)
              : ReplicaSet();
      const WorkloadIptStats s = EvaluateWorkloadIpt(
          g, p->assignment(), workload, 20000, &replicas);
      table.AddRow({p->Name(), FormatPercent(budget, 0),
                    std::to_string(replicas.NumReplicas()),
                    FormatPercent(s.ipt_probability),
                    FormatPercent(s.single_partition_fraction),
                    FormatPercent(s.embedding_cut_fraction)});
    }
  }
  table.Print(std::cout);
  std::cout << "\nExpected shape: ipt falls with budget for every layout; "
               "loom starts lower and stays lowest — the complementarity "
               "the paper's §3.2 predicts.\n";
  return 0;
}
