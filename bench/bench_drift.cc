// Drift-triggered incremental re-partitioning (closes the §4.2/§5 loop):
// live traffic is partitioned by LOOM built for workload A; the query mix
// then switches to workload B (piecewise-stationary drift). The
// WorkloadTracker's sliding summary feeds the DriftDetector each tick; on a
// confirmed switch the DriftController re-points LOOM at the drifted
// snapshot and runs a bounded-migration restream pass with the live
// assignment as prior — gain-ordered so the migration budget buys the most
// valuable moves first.
//
// The table brackets that reaction between doing nothing (stale assignment)
// and a cold multi-pass restream with unlimited migration. Expected shape:
// the budgeted reaction lands within ~2 edge-cut points of the cold
// restream while moving <= the configured budget (vs ~50%+ for cold) at a
// fraction of the latency — and the detector neither fires on stationary
// traffic nor re-fires after the reaction rebases it.

#include <cstring>
#include <iostream>
#include <string>

#include "common/table.h"
#include "drift_scenario.h"

int main(int argc, char** argv) {
  using namespace loom;
  using namespace loom::bench;

  DriftScenarioConfig config;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--full") == 0) {
      config.n = 20000;
    } else if (std::strcmp(argv[i], "--fast") == 0) {
      // defaults
    } else {
      std::cerr << "usage: bench_drift [--fast|--full]\n";
      return 2;
    }
  }

  const DriftScenarioResult r = RunDriftScenario(config);

  std::cout << "Detection: stationary fires=" << r.stationary_fires
            << " (want 0), fired=" << (r.fired ? "yes" : "no")
            << " at drift tick " << r.fire_tick
            << " (JS=" << FormatDouble(r.fire_signal.js, 3)
            << ", L1=" << FormatDouble(r.fire_signal.l1, 3)
            << "), post-reaction fires=" << r.post_reaction_fires
            << " (want 0)\n\n";

  TablePrinter table(
      "Drift reaction vs the brackets (piecewise-stationary workload, "
      "n=" + std::to_string(config.n) + ", k=" + std::to_string(config.k) +
          ", budget=" + FormatPercent(r.max_migration_fraction) + ")",
      {"strategy", "edge-cut", "migration", "seconds"});
  table.AddRow({"no reaction (stale)", FormatPercent(r.cut_no_reaction),
                FormatPercent(0.0), "-"});
  table.AddRow({"drift reaction (budgeted)", FormatPercent(r.cut_reaction),
                FormatPercent(r.migration_reaction),
                FormatDouble(r.seconds_reaction, 3)});
  table.AddRow({"cold restream (" + std::to_string(config.cold_passes) +
                    " passes)",
                FormatPercent(r.cut_cold), FormatPercent(r.migration_cold),
                FormatDouble(r.seconds_cold, 3)});
  table.Print(std::cout);

  std::cout << "\nReaction capacity pressure: overflow="
            << r.reaction_overflow_fallbacks
            << " forced=" << r.reaction_forced_placements
            << " assign-errors=" << r.reaction_assign_errors
            << " budget-denied=" << r.reaction_budget_denied_moves << "\n";
  std::cout << "\nExpected shape: reaction within ~2 cut points of cold at "
               "<= the migration budget; cold moves most of the graph.\n";
  return 0;
}
