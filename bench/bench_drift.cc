// Drift-triggered incremental re-partitioning (closes the §4.2/§5 loop):
// live traffic is partitioned by LOOM built for workload A; the query mix
// then switches to workload B (piecewise-stationary drift). The
// WorkloadTracker's sliding summary feeds the DriftDetector each tick; on a
// confirmed switch the DriftController re-points LOOM at the drifted
// snapshot and runs a bounded-migration restream pass with the live
// assignment as prior — gain-ordered so the migration budget buys the most
// valuable moves first.
//
// The table brackets that reaction between doing nothing (stale assignment)
// and a cold multi-pass restream with unlimited migration, and contrasts the
// serial reaction with the sharded one (--shards N workers, default 4): the
// replay splits by prior partition, each worker restreams its shard against
// the read-only live assignment with a proportional budget slice, and the
// merge composes the result. "k-core latency" is the share-nothing critical
// path — serial setup + slowest shard (thread-CPU) + merge — i.e. the
// reaction latency on a machine with one free core per shard; wall time on
// this machine cannot beat 1 worker when fewer cores are free.

#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "common/table.h"
#include "drift_scenario.h"

int main(int argc, char** argv) {
  using namespace loom;
  using namespace loom::bench;

  DriftScenarioConfig config;
  uint32_t shards = 4;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--full") == 0) {
      config.n = 20000;
    } else if (std::strcmp(argv[i], "--fast") == 0) {
      // defaults
    } else if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
      shards = static_cast<uint32_t>(std::atoi(argv[++i]));
      if (shards < 2) shards = 2;
    } else {
      std::cerr << "usage: bench_drift [--fast|--full] [--shards N]\n";
      return 2;
    }
  }

  const DriftScenarioResult r = RunDriftScenario(config);
  DriftScenarioConfig sharded_config = config;
  sharded_config.reaction_shards = shards;
  // Damped sharded reactions spend half the remaining budget per pass, so
  // they need roughly twice the serial pass count to spend it all.
  sharded_config.reaction_passes = config.reaction_passes * 2;
  const DriftScenarioResult rs = RunDriftScenario(sharded_config);

  std::cout << "Detection: stationary fires=" << r.stationary_fires
            << " (want 0), fired=" << (r.fired ? "yes" : "no")
            << " at drift tick " << r.fire_tick
            << " (JS=" << FormatDouble(r.fire_signal.js, 3)
            << ", L1=" << FormatDouble(r.fire_signal.l1, 3)
            << "), post-reaction fires=" << r.post_reaction_fires
            << " (want 0)\n\n";

  TablePrinter table(
      "Drift reaction vs the brackets (piecewise-stationary workload, "
      "n=" + std::to_string(config.n) + ", k=" + std::to_string(config.k) +
          ", budget=" + FormatPercent(r.max_migration_fraction) + ")",
      {"strategy", "edge-cut", "migration", "wall s", "k-core s"});
  table.AddRow({"no reaction (stale)", FormatPercent(r.cut_no_reaction),
                FormatPercent(0.0), "-", "-"});
  table.AddRow({"drift reaction (1 worker)", FormatPercent(r.cut_reaction),
                FormatPercent(r.migration_reaction),
                FormatDouble(r.seconds_reaction, 3),
                FormatDouble(r.seconds_reaction, 3)});
  table.AddRow({"drift reaction (" + std::to_string(shards) + " workers)",
                FormatPercent(rs.cut_reaction),
                FormatPercent(rs.migration_reaction),
                FormatDouble(rs.seconds_reaction, 3),
                FormatDouble(rs.critical_path_reaction, 3)});
  table.AddRow({"cold restream (" + std::to_string(config.cold_passes) +
                    " passes)",
                FormatPercent(r.cut_cold), FormatPercent(r.migration_cold),
                FormatDouble(r.seconds_cold, 3), "-"});
  table.Print(std::cout);

  if (rs.critical_path_reaction > 0.0) {
    std::cout << "\nReaction latency at " << shards << " workers: "
              << FormatDouble(rs.critical_path_reaction, 3)
              << " s critical path vs " << FormatDouble(r.seconds_reaction, 3)
              << " s serial ("
              << FormatDouble(r.seconds_reaction /
                                  rs.critical_path_reaction, 2)
              << "x with one free core per shard)\n";
  }
  std::cout << "\nReaction capacity pressure (1 worker): overflow="
            << r.reaction_overflow_fallbacks
            << " forced=" << r.reaction_forced_placements
            << " assign-errors=" << r.reaction_assign_errors
            << " budget-denied=" << r.reaction_budget_denied_moves << "\n";
  std::cout << "\nExpected shape: both reactions within ~2 cut points of "
               "cold at <= the migration budget; cold moves most of the "
               "graph; the sharded reaction's critical path shrinks with "
               "the worker count.\n";
  return 0;
}
