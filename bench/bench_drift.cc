// Experiment E12 (extension of §4.2's "window over Q"): workload drift.
// The query mix shifts from workload A (label-{0,1} paths/cycles) to
// workload B (label-{2,3} triangles/stars). A LOOM partitioner built from a
// *stale* summary (trained on A) places B's motifs like any LDG; one built
// from the WorkloadTracker's post-drift snapshot captures them. Expected
// shape on B-traffic: tracker-informed > combined-history > stale-A.

#include <iostream>

#include "common/table.h"
#include "harness.h"
#include "tpstry/workload_tracker.h"
#include "workload/query_builders.h"

int main() {
  using namespace loom;
  using namespace loom::bench;

  const uint32_t n = 20000;
  const uint32_t k = 8;

  // Workload A (pre-drift) and B (post-drift) on disjoint label sets.
  Workload workload_a;
  (void)workload_a.Add("a-path", PathQuery({0, 1, 0}), 2.0);
  (void)workload_a.Add("a-cycle", CycleQuery({0, 1, 0, 1}), 1.0);
  workload_a.Normalize();
  Workload workload_b;
  (void)workload_b.Add("b-tri", TriangleQuery(2, 3, 2), 2.0);
  (void)workload_b.Add("b-star", StarQuery(3, {2, 2}), 1.0);
  workload_b.Normalize();

  // The data graph contains BOTH structure families, planted with temporal
  // locality; by the time the graph streams in, live traffic is workload B.
  Rng rng(71);
  LabeledGraph g =
      MakeGraph(GraphKind::kBarabasiAlbert, n, 6, LabelConfig{4, 0.2}, rng);
  PlantWorkloadMotifs(&g, workload_a, n / 24, rng, /*locality_span=*/48);
  PlantWorkloadMotifs(&g, workload_b, n / 24, rng, /*locality_span=*/48);
  const GraphStream stream = MakeStream(g, StreamOrder::kNatural, rng);

  // Simulate the query stream: 300 observations of A then 300 of B through
  // a 128-query tracker window.
  WorkloadTrackerOptions topts;
  topts.window_queries = 128;
  WorkloadTracker tracker(4, topts);
  Rng qrng(5);
  auto observe_phase = [&](const Workload& w, int count) {
    for (int i = 0; i < count; ++i) {
      (void)tracker.Observe(w.queries()[w.SampleIndex(qrng)].pattern);
    }
  };
  observe_phase(workload_a, 300);
  observe_phase(workload_b, 300);

  PartitionerOptions popts;
  popts.k = k;
  popts.num_vertices_hint = g.NumVertices();
  popts.num_edges_hint = g.NumEdges();
  popts.window_size = 1024;

  // Three summaries: stale (A only), combined history (A+B equally), and
  // the tracker snapshot (post-drift: B-dominated).
  Workload combined;
  for (const Workload* w : {&workload_a, &workload_b}) {
    for (const QuerySpec& q : w->queries()) {
      (void)combined.Add(q.name, q.pattern, q.frequency);
    }
  }
  combined.Normalize();

  struct Case {
    std::string name;
    const Workload* workload;  // null = use tracker snapshot
  };
  const TpstryPP snapshot = tracker.Snapshot();
  const std::vector<Case> cases = {
      {"stale summary (A only)", &workload_a},
      {"combined history (A+B)", &combined},
      {"tracker snapshot (post-drift)", nullptr},
  };

  TablePrinter table(
      "E12 workload drift: partition for yesterday's queries, serve today's "
      "(live traffic = workload B; n=" + std::to_string(g.NumVertices()) +
          ", k=" + std::to_string(k) + ")",
      {"summary", "ipt-prob", "1-part", "emb-cut", "cluster-vertices"});

  for (const Case& c : cases) {
    LoomOptions lopts;
    lopts.partitioner = popts;
    lopts.matcher.frequency_threshold = 0.2;

    std::unique_ptr<Loom> loom;
    std::unique_ptr<LoomPartitioner> tracker_partitioner;
    LoomPartitioner* partitioner = nullptr;
    if (c.workload != nullptr) {
      auto created = Loom::Create(*c.workload, lopts);
      if (!created.ok()) {
        std::cerr << created.status().ToString() << "\n";
        return 1;
      }
      loom = std::move(created).value();
      partitioner = &loom->Partitioner();
    } else {
      tracker_partitioner =
          std::make_unique<LoomPartitioner>(lopts, &snapshot);
      partitioner = tracker_partitioner.get();
    }
    partitioner->Run(stream);
    // Evaluate against live workload B.
    const WorkloadIptStats s = EvaluateWorkloadIpt(
        g, partitioner->assignment(), workload_b);
    table.AddRow({c.name, FormatPercent(s.ipt_probability),
                  FormatPercent(s.single_partition_fraction),
                  FormatPercent(s.embedding_cut_fraction),
                  std::to_string(partitioner->loom_stats().cluster_vertices)});
  }
  table.Print(std::cout);
  std::cout << "\nExpected shape: the post-drift snapshot localises B's "
               "motifs best; the stale summary wastes the window on "
               "yesterday's patterns.\n";
  return 0;
}
