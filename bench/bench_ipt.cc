// Experiment E2 (DESIGN.md §3): inter-partition traversal probability by
// partitioner and workload — the paper's headline comparison. For each
// workload family the harness streams the same graph through every
// partitioner and reports:
//   ipt-prob   probability a traversal performed during query execution
//              crosses partitions (the paper's objective);
//   1-part     fraction of query answers contained in a single partition
//              (the abstract's "answered within a single partition");
//   emb-cut    fraction of answer edges that are cut;
//   edge-cut   classic workload-agnostic cut, for contrast.
//
// Expected shape: loom < ldg-buffered < ldg/fennel < hash on motif-heavy
// workloads; the gap collapses on the motif-free lookup workload.

#include <iostream>

#include "common/table.h"
#include "harness.h"

namespace loom {
namespace bench {
namespace {

struct WorkloadCase {
  std::string name;
  Workload workload;
};

void RunCase(const WorkloadCase& wc, uint32_t n, uint32_t k) {
  Rng rng(1234);
  LabeledGraph g =
      MakeGraph(GraphKind::kBarabasiAlbert, n, 6, LabelConfig{4, 0.4}, rng);
  PlantWorkloadMotifs(&g, wc.workload, n / 24, rng, /*locality_span=*/48);
  const GraphStream stream = MakeStream(g, StreamOrder::kNatural, rng);

  PartitionerOptions popts;
  popts.k = k;
  popts.num_vertices_hint = g.NumVertices();
  popts.num_edges_hint = g.NumEdges();
  popts.window_size = 1024;

  PartitionerSet set = MakeStandardSet(popts, wc.workload, 0.2);

  TablePrinter table(
      "E2 ipt by partitioner — workload=" + wc.name + " (n=" +
          std::to_string(g.NumVertices()) + ", m=" +
          std::to_string(g.NumEdges()) + ", k=" + std::to_string(k) + ")",
      {"partitioner", "ipt-prob", "1-part", "emb-cut", "edge-cut", "balance",
       "sec"});
  for (StreamingPartitioner* p : set.All()) {
    const RunResult r = RunStreaming(p, g, stream, wc.workload);
    table.AddRow({r.partitioner, FormatPercent(r.ipt.ipt_probability),
                  FormatPercent(r.ipt.single_partition_fraction),
                  FormatPercent(r.ipt.embedding_cut_fraction),
                  FormatPercent(r.cut_fraction), FormatDouble(r.balance),
                  FormatDouble(r.seconds)});
    if (auto* lp = dynamic_cast<LoomPartitioner*>(p)) {
      const LoomStats& ls = lp->loom_stats();
      const StreamMatcherStats& ms = lp->matcher_stats();
      std::printf(
          "   [loom] clusters=%llu cluster-vertices=%llu splits=%llu "
          "singles=%llu | growths=%llu/%llu regrows=%llu max-tracked=%llu\n",
          (unsigned long long)ls.clusters_assigned,
          (unsigned long long)ls.cluster_vertices,
          (unsigned long long)ls.clusters_split,
          (unsigned long long)ls.single_vertices,
          (unsigned long long)ms.growths_accepted,
          (unsigned long long)(ms.growths_accepted + ms.growths_rejected),
          (unsigned long long)ms.regrow_invocations,
          (unsigned long long)ms.max_tracked_live);
    }
  }
  const RunResult off = RunOffline(g, wc.workload, k, 1.1, 99);
  table.AddRow({off.partitioner, FormatPercent(off.ipt.ipt_probability),
                FormatPercent(off.ipt.single_partition_fraction),
                FormatPercent(off.ipt.embedding_cut_fraction),
                FormatPercent(off.cut_fraction), FormatDouble(off.balance),
                FormatDouble(off.seconds)});
  table.Print(std::cout);
}

}  // namespace
}  // namespace bench
}  // namespace loom

int main() {
  using namespace loom;
  using namespace loom::bench;

  WorkloadGenOptions wopts;
  wopts.num_labels = 4;
  wopts.num_queries = 5;
  wopts.frequency_skew = 1.0;
  wopts.seed = 17;

  std::vector<WorkloadCase> cases;
  cases.push_back({"paths", PathWorkload(wopts)});
  cases.push_back({"mixed-motifs", MixedMotifWorkload(wopts)});
  cases.push_back({"lookups", LookupWorkload(wopts)});

  for (const auto& wc : cases) RunCase(wc, 20000, 8);
  return 0;
}
