#include "perf_report.h"

#include <cstdio>
#include <fstream>
#include <iostream>

#include "common/timer.h"
#include "edge_partition/hdrf_partitioner.h"
#include "matching/stream_matcher.h"
#include "motif/canonical.h"
#include "motif/signature.h"
#include "partition/gain_scorer.h"
#include "partition/hash_partitioner.h"
#include "partition/ldg_partitioner.h"
#include "stream/arrival_source.h"
#include "stream/window.h"
#include "workload/query_builders.h"

namespace loom {
namespace bench {

// ----------------------------------------------------------------- JSON

std::string JsonEscape(const std::string& s) {
  std::string out;
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (c == '\n') {
      out += "\\n";
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out.push_back(c);
    }
  }
  return out;
}

namespace {

std::string JsonNumber(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

void JsonObject::Add(const std::string& key, const std::string& value) {
  fields.push_back("\"" + JsonEscape(key) + "\": \"" + JsonEscape(value) +
                   "\"");
}
void JsonObject::Add(const std::string& key, double value) {
  fields.push_back("\"" + JsonEscape(key) + "\": " + JsonNumber(value));
}
void JsonObject::Add(const std::string& key, uint64_t value) {
  fields.push_back("\"" + JsonEscape(key) + "\": " + std::to_string(value));
}
void JsonObject::AddRaw(const std::string& key, const std::string& raw) {
  fields.push_back("\"" + JsonEscape(key) + "\": " + raw);
}

std::string JsonObject::Render(int indent) const {
  const std::string pad(indent, ' ');
  std::string out = "{\n";
  for (size_t i = 0; i < fields.size(); ++i) {
    out += pad + "  " + fields[i];
    if (i + 1 < fields.size()) out += ",";
    out += "\n";
  }
  out += pad + "}";
  return out;
}

std::string RenderArray(const std::vector<JsonObject>& items, int indent) {
  const std::string pad(indent, ' ');
  std::string out = "[\n";
  for (size_t i = 0; i < items.size(); ++i) {
    out += pad + "  " + items[i].Render(indent + 2);
    if (i + 1 < items.size()) out += ",";
    out += "\n";
  }
  out += pad + "]";
  return out;
}

bool WriteFile(const std::string& path, const std::string& content) {
  std::ofstream f(path, std::ios::trunc);
  if (!f) {
    std::cerr << "perf_report: cannot open " << path << " for writing\n";
    return false;
  }
  f << content << "\n";
  return f.good();
}

// ----------------------------------------------------------------- micro

namespace {

template <typename Fn>
MicroResult TimeLoop(const std::string& name, uint64_t iterations,
                     uint64_t items_per_iteration, Fn&& fn) {
  MicroResult r;
  r.name = name;
  r.iterations = iterations;
  r.items = iterations * items_per_iteration;
  WallTimer timer;
  for (uint64_t i = 0; i < iterations; ++i) fn();
  r.seconds = timer.ElapsedSeconds();
  return r;
}

}  // namespace

std::vector<MicroResult> RunMicroLoops(bool fast) {
  std::vector<MicroResult> out;

  {
    const SignatureScheme scheme(8);
    GraphSignature sig;
    Label a = 0;
    out.push_back(TimeLoop("signature_multiply_edge",
                           fast ? 200000 : 2000000, 1, [&] {
                             scheme.MultiplyEdge(&sig, a, (a + 3) % 8);
                             a = (a + 1) % 8;
                             if (sig.NumFactors() > 64) sig = GraphSignature();
                           }));
  }

  {
    const SignatureScheme scheme(4);
    const GraphSignature small = scheme.SignatureOf(PaperQ2());
    const GraphSignature big = scheme.SignatureOf(PaperFigure1Graph());
    volatile bool sink = false;
    out.push_back(TimeLoop("signature_divides", fast ? 100000 : 1000000, 1,
                           [&] { sink = small.Divides(big); }));
    (void)sink;
  }

  {
    const LabeledGraph q = PaperQ1();
    out.push_back(TimeLoop("canonical_form_small_motif", fast ? 5000 : 50000,
                           1, [&] {
                             auto c = CanonicalForm(q);
                             (void)c;
                           }));
  }

  {
    const Workload w = PaperFigure1Workload();
    auto trie = BuildTrie(w);
    const GraphSignature sig = (*trie)->scheme().SignatureOf(PaperQ2());
    out.push_back(TimeLoop("trie_signature_lookup", fast ? 100000 : 1000000,
                           1, [&] {
                             auto hits = (*trie)->FindBySignature(sig);
                             (void)hits;
                           }));
  }

  {
    const uint32_t n = fast ? 5000 : 20000;
    Rng rng(1);
    const LabeledGraph g = BarabasiAlbert(n, 4, LabelConfig{4, 0.0}, rng);
    const GraphStream stream = MakeStream(g, StreamOrder::kRandom, rng);
    const uint64_t reps = fast ? 3 : 10;
    out.push_back(TimeLoop("ldg_placement", reps, g.NumVertices(), [&] {
      PartitionerOptions o;
      o.k = 16;
      o.num_vertices_hint = g.NumVertices();
      LdgPartitioner p(o);
      p.Run(stream);
    }));
    out.push_back(TimeLoop("hash_placement", reps, g.NumVertices(), [&] {
      PartitionerOptions o;
      o.k = 16;
      o.num_vertices_hint = g.NumVertices();
      HashPartitioner p(o);
      p.Run(stream);
    }));
    // The HDRF scoring kernel end to end (one cold streaming pass over the
    // same BA stream), normalised per edge placed — the per-pick cost the
    // bitmask kernel is meant to hold down.
    out.push_back(TimeLoop("hdrf_pick_partition", reps, g.NumEdges(), [&] {
      EdgePartitionerOptions o;
      o.k = 16;
      o.num_vertices_hint = g.NumVertices();
      o.num_edges_hint = g.NumEdges();
      o.record_placements = false;
      HdrfPartitioner p(o);
      StreamCursor cursor(stream);
      p.Run(cursor);
    }));
  }

  {
    const uint64_t churn = 4096;
    out.push_back(TimeLoop("window_churn", fast ? 50 : 500, churn, [&] {
      StreamWindow w(256);
      for (VertexId v = 0; v < churn; ++v) {
        if (w.Full()) w.PopOldest();
        w.Push(v, v % 4,
               v > 0 ? std::vector<VertexId>{v - 1} : std::vector<VertexId>{});
      }
    }));
  }

  {
    // The blocked gain kernel behind every LOOM scoring site
    // (ScoreVertices / chunk scoring / AssignSingle): gather a 16-member
    // unit's weighted edges, flat-accumulate into k partitions, compact the
    // touched set. One iteration = one unit scored.
    const uint32_t k = 16;
    const uint32_t num_labels = 4;
    const uint32_t pool = 4096;
    const uint32_t unit_size = 16;
    const uint32_t degree = 8;
    BlockedGainScorer scorer;
    scorer.Configure(k, num_labels, /*use_weights=*/true,
                     /*untraversed_weight=*/0.05);
    for (Label a = 0; a < num_labels; ++a) {
      for (Label b = a; b < num_labels; ++b) {
        scorer.SetEdgeWeight(a, b, 0.1 + 0.05 * static_cast<double>(a + b));
      }
    }
    Rng rng(3);
    std::vector<Label> label_of(pool);
    std::vector<int32_t> part_of(pool);
    std::vector<VertexId> neighbors(pool);
    for (uint32_t v = 0; v < pool; ++v) {
      label_of[v] = static_cast<Label>(rng.UniformInt(0, num_labels - 1));
      // ~1/17 unassigned, like a live window mid-stream.
      part_of[v] = static_cast<int32_t>(rng.UniformInt(0, k)) - 1;
      neighbors[v] = static_cast<VertexId>(rng.UniformInt(0, pool - 1));
    }
    std::vector<double> scores(k, 0.0);
    uint32_t base = 0;
    out.push_back(TimeLoop("score_vertices", fast ? 20000 : 200000, unit_size,
                           [&] {
                             scorer.BeginUnit();
                             for (uint32_t m = 0; m < unit_size; ++m) {
                               const uint32_t v = (base + m * 37) % pool;
                               scorer.AddMember(
                                   label_of[v],
                                   Span<const VertexId>(
                                       neighbors.data() + v % (pool - degree),
                                       degree),
                                   label_of,
                                   [&](VertexId w) { return part_of[w]; });
                             }
                             scorer.Commit(&scores);
                             base = (base + unit_size) % pool;
                           }));
  }

  {
    // The matcher's closure extraction on a motif-planted stream: push each
    // arrival through a 256-slot sliding window and query the evicted
    // vertex's transitive match closure — the per-eviction cost of LOOM's
    // cluster path. One item = one arrival processed.
    Rng rng(4);
    const uint32_t n = fast ? 2000 : 8000;
    LabeledGraph g = BarabasiAlbert(n, 4, LabelConfig{3, 0.0}, rng);
    PlantMotifs(&g, TriangleQuery(0, 1, 2), n / 32, rng, /*locality_span=*/16);
    const GraphStream stream = MakeStream(g, StreamOrder::kRandom, rng);
    Workload w;
    if (!w.Add("tri", TriangleQuery(0, 1, 2), 1.0).ok()) return out;
    w.Normalize();
    auto trie = BuildTrie(w);
    if (!trie.ok()) return out;
    StreamMatcherOptions mopts;
    mopts.frequency_threshold = 0.3;
    const uint32_t window_size = 256;
    std::vector<uint8_t> in_window(n);
    std::vector<VertexId> ring(window_size);
    std::vector<VertexId> filtered;
    out.push_back(TimeLoop("match_closure", fast ? 2 : 6, n, [&] {
      StreamMatcher m(trie->get(), mopts);
      std::fill(in_window.begin(), in_window.end(), 0);
      uint32_t live = 0;
      uint64_t count = 0;
      for (const VertexArrival& a : stream.arrivals()) {
        const uint32_t pos = static_cast<uint32_t>(count++ % window_size);
        if (live == window_size) {
          const VertexId victim = ring[pos];
          const std::vector<VertexId> closure = m.MatchClosureFor(victim);
          (void)closure;
          m.RemoveVertex(victim);
          in_window[victim] = 0;
          --live;
        }
        filtered.clear();
        for (const VertexId w2 : a.back_edges) {
          if (in_window[w2]) filtered.push_back(w2);
        }
        m.OnVertex(a.vertex, a.label, filtered);
        ring[pos] = a.vertex;
        in_window[a.vertex] = 1;
        ++live;
      }
    }));
  }

  return out;
}

// ------------------------------------------------------------ throughput

std::vector<ThroughputRow> RunThroughput(bool fast) {
  const uint32_t n = fast ? 4000 : 30000;
  const uint32_t reps = fast ? 2 : 3;
  std::vector<GraphKind> kinds = {GraphKind::kErdosRenyi,
                                  GraphKind::kBarabasiAlbert};
  if (!fast) {
    kinds.push_back(GraphKind::kWattsStrogatz);
    kinds.push_back(GraphKind::kRMat);
  }

  WorkloadGenOptions wopts;
  wopts.num_queries = 4;
  const Workload workload = MixedMotifWorkload(wopts);

  std::vector<ThroughputRow> out;
  for (const GraphKind kind : kinds) {
    Rng rng(2024);
    LabeledGraph g = MakeGraph(kind, n, /*avg_degree=*/8, LabelConfig{4, 0.3},
                               rng);
    PlantWorkloadMotifs(&g, workload, n / 24, rng, /*locality_span=*/32);
    const GraphStream stream = MakeStream(g, StreamOrder::kRandom, rng);

    PartitionerOptions popts;
    popts.k = 8;
    popts.num_vertices_hint = g.NumVertices();
    popts.num_edges_hint = g.NumEdges();
    popts.window_size = 256;

    const auto time_run = [&](const std::string& name, auto&& make) {
      ThroughputRow row;
      row.family = GraphKindName(kind);
      row.partitioner = name;
      row.num_vertices = g.NumVertices();
      row.num_edges = g.NumEdges();
      WallTimer timer;
      for (uint32_t r = 0; r < reps; ++r) make();
      row.seconds = timer.ElapsedSeconds() / reps;
      if (row.seconds > 0) {
        row.vertices_per_second = static_cast<double>(row.num_vertices) /
                                  row.seconds;
        row.edges_per_second = static_cast<double>(row.num_edges) /
                               row.seconds;
      }
      out.push_back(row);
    };

    LoomOptions lopts;
    lopts.partitioner = popts;
    lopts.matcher.frequency_threshold = 0.2;
    // Probe creation once before timing: a failed Create must fail the whole
    // section (empty result), never leave a bogus near-zero-seconds row that
    // would report an absurd vertices/s as the headline number.
    if (!Loom::Create(workload, lopts).ok()) {
      std::cerr << "perf_report: loom creation failed; throughput section "
                   "aborted\n";
      return {};
    }

    time_run("hash", [&] {
      HashPartitioner p(popts);
      p.Run(stream);
    });
    time_run("ldg", [&] {
      LdgPartitioner p(popts);
      p.Run(stream);
    });
    time_run("loom", [&] {
      auto loom = Loom::Create(workload, lopts);
      (*loom)->Partitioner().Run(stream);
    });
  }
  return out;
}

// ----------------------------------------------------------------- report

bool WriteMicroReport(const std::string& path, const std::string& mode,
                      const std::vector<MicroResult>& micro,
                      const std::vector<ThroughputRow>& throughput) {
  std::vector<JsonObject> rows;
  for (const MicroResult& r : micro) {
    if (r.iterations == 0 || r.seconds < 0) {
      std::cerr << "perf_report: micro loop " << r.name << " is invalid\n";
      return false;
    }
    JsonObject row;
    row.Add("name", r.name);
    row.Add("iterations", r.iterations);
    row.Add("seconds", r.seconds);
    const double per_op = r.seconds / static_cast<double>(r.iterations) * 1e9;
    row.Add("ns_per_op", per_op);
    const double ops =
        r.seconds > 0 ? static_cast<double>(r.items) / r.seconds : 0;
    row.Add("ops_per_second", ops);
    row.Add("peak_rss_bytes", PeakRssBytes());
    rows.push_back(std::move(row));
  }
  if (rows.empty()) {
    std::cerr << "perf_report: micro section produced no rows\n";
    return false;
  }

  std::vector<JsonObject> tp_rows;
  for (const ThroughputRow& r : throughput) {
    if (r.seconds <= 0 || r.num_vertices == 0) {
      std::cerr << "perf_report: throughput row " << r.family << "/"
                << r.partitioner << " is invalid\n";
      return false;
    }
    JsonObject row;
    row.Add("family", r.family);
    row.Add("partitioner", r.partitioner);
    row.Add("num_vertices", r.num_vertices);
    row.Add("num_edges", r.num_edges);
    row.Add("seconds", r.seconds);
    row.Add("vertices_per_second", r.vertices_per_second);
    row.Add("edges_per_second", r.edges_per_second);
    row.Add("peak_rss_bytes", PeakRssBytes());
    tp_rows.push_back(std::move(row));
  }
  if (tp_rows.empty()) {
    std::cerr << "perf_report: throughput section produced no rows\n";
    return false;
  }

  JsonObject root;
  root.Add("schema", std::string("loom-bench-micro-v3"));
  root.Add("mode", mode);
  root.AddRaw("results", RenderArray(rows, 2));
  root.AddRaw("throughput", RenderArray(tp_rows, 2));
  return WriteFile(path, root.Render(0));
}

}  // namespace bench
}  // namespace loom
