#ifndef LOOM_BENCH_DRIFT_SCENARIO_H_
#define LOOM_BENCH_DRIFT_SCENARIO_H_

/// \file
/// The piecewise-stationary drift scenario shared by `bench_drift`, the
/// `drift` section of `BENCH_edge_cut.json` (tools/run_benchmarks) and
/// `tests/drift_test.cc`, so the number CI validates is the number the
/// table prints and the test asserts on.
///
/// Shape: a graph planted with the motifs of two workloads on disjoint
/// label sets is streamed once and partitioned by LOOM built for workload A
/// (the live assignment). The query stream then drifts: a WorkloadTracker
/// observes A-queries for a stationary phase (the detector must stay
/// quiet), then B-queries (the detector must fire). On fire, the LOOM
/// partitioner is re-pointed at the drifted tracker snapshot and the
/// DriftController runs its bounded-migration reaction. The scenario
/// reports that reaction against the two bracketing alternatives: doing
/// nothing (the stale live assignment) and a cold multi-pass restream
/// with full migration freedom.

#include <cstdint>

#include "drift/drift_controller.h"
#include "harness.h"

namespace loom {
namespace bench {

/// Scenario knobs; defaults are the fast-mode configuration recorded in
/// BENCH_edge_cut.json.
struct DriftScenarioConfig {
  uint32_t n = 4000;
  uint32_t k = 8;
  uint32_t avg_degree = 6;
  uint64_t seed = 2026;
  /// Arrival order of the live stream. DFS order models a crawl-fed system
  /// and exhibits the single-pass fragility restreaming exists to repair
  /// (§3.1): the reaction's replay then has real ground to recover.
  StreamOrder stream_order = StreamOrder::kDfs;
  size_t window_size = 128;
  double frequency_threshold = 0.2;
  /// Reaction budget: cumulative migration cap of the drift reaction.
  double max_migration_fraction = 0.25;
  uint32_t reaction_passes = 2;
  /// Share-nothing shards per reaction pass (1 = serial reaction;
  /// `bench_drift` contrasts 1 with a worker pool).
  uint32_t reaction_shards = 1;
  /// Passes of the cold (unbudgeted, from-scratch) restream baseline.
  uint32_t cold_passes = 3;
  /// Query-stream window of the tracker.
  size_t tracker_window = 128;
  /// Observed queries per detector tick.
  uint32_t queries_per_tick = 64;
  /// Ticks of workload-A traffic before the switch (quiet phase).
  uint32_t stationary_ticks = 4;
  /// Ticks of workload-B traffic after the switch.
  uint32_t drift_ticks = 6;
};

/// Everything the bench table, the JSON section and the tests consume.
struct DriftScenarioResult {
  // --- detection ---
  /// Detector fired during the drift phase.
  bool fired = false;
  /// 1-based drift-phase tick of the fire (0 when it never fired).
  uint32_t fire_tick = 0;
  /// Fires during the stationary phase (hysteresis contract: must be 0).
  uint32_t stationary_fires = 0;
  /// Fires on the drift-phase ticks *after* the reaction rebased the
  /// detector (no-thrash contract: must be 0).
  uint32_t post_reaction_fires = 0;
  /// The signal on the tick that fired.
  DriftSignal fire_signal;

  // --- the three assignments compared ---
  /// Edge cut of the stale live assignment (no reaction).
  double cut_no_reaction = 0.0;
  /// Edge cut / migration / latency of the bounded-migration reaction.
  double cut_reaction = 0.0;
  double migration_reaction = 0.0;
  double seconds_reaction = 0.0;
  /// Reaction latency with one free core per shard (sharded reactions:
  /// serial setup + slowest shard's CPU time + merge per pass; equals
  /// seconds_reaction up to timer noise when reaction_shards is 1).
  double critical_path_reaction = 0.0;
  /// Edge cut / migration / latency of the cold multi-pass restream.
  double cut_cold = 0.0;
  double migration_cold = 0.0;
  double seconds_cold = 0.0;

  // --- capacity-pressure counters summed over the reaction passes ---
  uint64_t reaction_overflow_fallbacks = 0;
  uint64_t reaction_forced_placements = 0;
  uint64_t reaction_assign_errors = 0;
  uint64_t reaction_budget_denied_moves = 0;

  /// The budget actually configured (copied from the config, for reports).
  double max_migration_fraction = 0.0;
};

/// Runs the scenario end to end. Deterministic for a fixed config.
DriftScenarioResult RunDriftScenario(const DriftScenarioConfig& config);

}  // namespace bench
}  // namespace loom

#endif  // LOOM_BENCH_DRIFT_SCENARIO_H_
