// Experiment E8 (DESIGN.md §3): ablations of LOOM's moving parts, each one a
// design decision the paper calls out:
//   (a) motif grouping off  -> buffered LDG (grouping is the active
//       ingredient; FIFO buffering alone changes nothing, see
//       BufferedLdgTest.EquivalentToLdgUnderFifoEviction);
//   (b) re-grow off         -> Fig. 3 overlap matches lost;
//   (c) paths-only TPSTry   -> branch/cycle motifs invisible (§4.2's reason
//       for generalising the trie to a DAG);
//   (d) overlap grouping off-> matches sharing sub-structure may split
//       (§4.4's assignment rule).

#include <iostream>

#include "common/table.h"
#include "harness.h"

int main() {
  using namespace loom;
  using namespace loom::bench;

  const uint32_t n = 20000;
  const uint32_t k = 8;

  WorkloadGenOptions wopts;
  wopts.num_queries = 5;
  wopts.seed = 5;
  Workload workload = MixedMotifWorkload(wopts);

  Rng rng(8);
  LabeledGraph g =
      MakeGraph(GraphKind::kBarabasiAlbert, n, 6, LabelConfig{4, 0.4}, rng);
  PlantWorkloadMotifs(&g, workload, n / 24, rng, /*locality_span=*/48);
  const GraphStream stream = MakeStream(g, StreamOrder::kNatural, rng);

  PartitionerOptions popts;
  popts.k = k;
  popts.num_vertices_hint = g.NumVertices();
  popts.num_edges_hint = g.NumEdges();
  popts.window_size = 1024;

  TablePrinter table(
      "E8 loom ablations (n=" + std::to_string(g.NumVertices()) +
          ", k=" + std::to_string(k) + ")",
      {"variant", "ipt-prob", "1-part", "emb-cut", "cluster-vertices",
       "regrow-matches"});

  struct Variant {
    std::string name;
    LoomOptions options;
  };
  std::vector<Variant> variants;
  {
    LoomOptions base;
    base.partitioner = popts;
    base.matcher.frequency_threshold = 0.2;
    variants.push_back({"loom (full)", base});

    LoomOptions no_regrow = base;
    no_regrow.matcher.use_regrow = false;
    variants.push_back({"no re-grow (E8b)", no_regrow});

    LoomOptions paths_only = base;
    paths_only.paths_only = true;
    variants.push_back({"paths-only trie (E8c)", paths_only});

    LoomOptions no_overlap = base;
    no_overlap.group_overlapping_matches = false;
    variants.push_back({"no overlap grouping (E8d)", no_overlap});

    LoomOptions grouping_off = base;
    // Threshold above every support: no frequent motifs -> buffered LDG.
    grouping_off.matcher.frequency_threshold = 1.01;
    variants.push_back({"motif grouping off (E8a)", grouping_off});

    LoomOptions weighted = base;
    weighted.use_traversal_weights = true;
    variants.push_back({"+ traversal-weighted LDG (E8e, §5)", weighted});

    LoomOptions no_local_split = base;
    no_local_split.local_cluster_split = false;
    variants.push_back({"oldest-first split fallback (E8f)", no_local_split});
  }

  for (const Variant& variant : variants) {
    auto loom = Loom::Create(workload, variant.options);
    if (!loom.ok()) {
      std::cerr << loom.status().ToString() << "\n";
      return 1;
    }
    const RunResult r =
        RunStreaming(&(*loom)->Partitioner(), g, stream, workload);
    table.AddRow(
        {variant.name, FormatPercent(r.ipt.ipt_probability),
         FormatPercent(r.ipt.single_partition_fraction),
         FormatPercent(r.ipt.embedding_cut_fraction),
         std::to_string((*loom)->Partitioner().loom_stats().cluster_vertices),
         std::to_string((*loom)->Partitioner().matcher_stats().regrow_matches)});
  }
  table.Print(std::cout);
  std::cout << "\nExpected shape: full loom has the best answer locality; "
               "each ablation gives part of it back.\n";
  return 0;
}
