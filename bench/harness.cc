#include "harness.h"

#include <cassert>

#include "common/timer.h"

namespace loom {
namespace bench {

std::string GraphKindName(GraphKind kind) {
  switch (kind) {
    case GraphKind::kErdosRenyi:
      return "erdos-renyi";
    case GraphKind::kBarabasiAlbert:
      return "barabasi-albert";
    case GraphKind::kWattsStrogatz:
      return "watts-strogatz";
    case GraphKind::kRMat:
      return "rmat";
  }
  return "unknown";
}

LabeledGraph MakeGraph(GraphKind kind, uint32_t n, uint32_t avg_degree,
                       const LabelConfig& labels, Rng& rng) {
  switch (kind) {
    case GraphKind::kErdosRenyi:
      return ErdosRenyiGnm(n, static_cast<uint64_t>(n) * avg_degree / 2,
                           labels, rng);
    case GraphKind::kBarabasiAlbert:
      return BarabasiAlbert(n, std::max<uint32_t>(1, avg_degree / 2), labels,
                            rng);
    case GraphKind::kWattsStrogatz:
      return WattsStrogatz(n, std::max<uint32_t>(1, avg_degree / 2), 0.1,
                           labels, rng);
    case GraphKind::kRMat: {
      // Round n up to a power of two for the recursive generator.
      uint32_t scale = 1;
      while ((1u << scale) < n) ++scale;
      return RMat(scale, std::max<uint32_t>(1, avg_degree / 2), 0.57, 0.19,
                  0.19, labels, rng);
    }
  }
  return LabeledGraph();
}

void PlantWorkloadMotifs(LabeledGraph* g, const Workload& workload,
                         uint32_t count_per_query, Rng& rng,
                         uint32_t locality_span) {
  for (const QuerySpec& q : workload.queries()) {
    PlantMotifs(g, q.pattern, count_per_query, rng, locality_span);
  }
}

RunResult RunStreaming(StreamingPartitioner* partitioner,
                       const LabeledGraph& g, const GraphStream& stream,
                       const Workload& workload) {
  RunResult result;
  result.partitioner = partitioner->Name();
  result.num_vertices = g.NumVertices();
  result.num_edges = g.NumEdges();

  WallTimer timer;
  partitioner->Run(stream);
  result.seconds = timer.ElapsedSeconds();

  const PartitionAssignment& a = partitioner->assignment();
  result.cut_fraction = EdgeCutFraction(g, a);
  result.balance = BalanceMaxOverAvg(a);
  result.ipt = EvaluateWorkloadIpt(g, a, workload);
  return result;
}

RunResult RunOffline(const LabeledGraph& g, const Workload& workload,
                     uint32_t k, double slack, uint64_t seed) {
  RunResult result;
  result.partitioner = "metis-like";
  result.num_vertices = g.NumVertices();
  result.num_edges = g.NumEdges();

  OfflineOptions opts;
  opts.k = k;
  opts.balance_slack = slack;
  opts.seed = seed;
  WallTimer timer;
  auto assignment = OfflineMultilevelPartition(g, opts);
  result.seconds = timer.ElapsedSeconds();
  assert(assignment.ok());

  result.cut_fraction = EdgeCutFraction(g, *assignment);
  result.balance = BalanceMaxOverAvg(*assignment);
  result.ipt = EvaluateWorkloadIpt(g, *assignment, workload);
  return result;
}

PartitionerSet MakeStandardSet(const PartitionerOptions& popts,
                               const Workload& workload,
                               double frequency_threshold) {
  PartitionerSet set;
  for (const std::string& name : KnownPartitioners()) {
    if (name == "loom") continue;
    auto partitioner = MakePartitioner(name, popts);
    assert(partitioner.ok());
    set.streaming.push_back(std::move(partitioner).value());
  }

  LoomOptions lopts;
  lopts.partitioner = popts;
  lopts.matcher.frequency_threshold = frequency_threshold;
  auto loom = Loom::Create(workload, lopts);
  assert(loom.ok());
  set.looms.push_back(std::move(loom).value());
  return set;
}

}  // namespace bench
}  // namespace loom
