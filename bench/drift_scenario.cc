#include "drift_scenario.h"

#include <cassert>
#include <utility>

#include "common/timer.h"
#include "workload/query_builders.h"

namespace loom {
namespace bench {

namespace {

// Pre-drift traffic: label-{0,1} paths and cycles.
Workload WorkloadA() {
  Workload w;
  (void)w.Add("a-path", PathQuery({0, 1, 0}), 2.0);
  (void)w.Add("a-cycle", CycleQuery({0, 1, 0, 1}), 1.0);
  w.Normalize();
  return w;
}

// Post-drift traffic: label-{2,3} triangles and stars — disjoint labels, so
// a summary trained on A is maximally stale.
Workload WorkloadB() {
  Workload w;
  (void)w.Add("b-tri", TriangleQuery(2, 3, 2), 2.0);
  (void)w.Add("b-star", StarQuery(3, {2, 2}), 1.0);
  w.Normalize();
  return w;
}

}  // namespace

DriftScenarioResult RunDriftScenario(const DriftScenarioConfig& config) {
  DriftScenarioResult result;
  result.max_migration_fraction = config.max_migration_fraction;

  const Workload workload_a = WorkloadA();
  const Workload workload_b = WorkloadB();

  // Data graph carrying BOTH workloads' structures with temporal locality.
  Rng rng(config.seed);
  LabeledGraph g = MakeGraph(GraphKind::kBarabasiAlbert, config.n,
                             config.avg_degree, LabelConfig{4, 0.2}, rng);
  PlantWorkloadMotifs(&g, workload_a, config.n / 24, rng,
                      /*locality_span=*/48);
  PlantWorkloadMotifs(&g, workload_b, config.n / 24, rng,
                      /*locality_span=*/48);
  const GraphStream stream = MakeStream(g, config.stream_order, rng);

  LoomOptions lopts;
  lopts.partitioner.k = config.k;
  lopts.partitioner.num_vertices_hint = g.NumVertices();
  lopts.partitioner.num_edges_hint = g.NumEdges();
  lopts.partitioner.window_size = config.window_size;
  lopts.matcher.frequency_threshold = config.frequency_threshold;

  // Live system: LOOM built for workload A partitions the stream once.
  auto created = Loom::Create(workload_a, lopts);
  if (!created.ok()) return result;  // impossible for the fixed workloads
  std::unique_ptr<Loom> live = std::move(created).value();
  live->Partitioner().Run(stream);
  const PartitionAssignment original = live->Partitioner().assignment();
  result.cut_no_reaction = EdgeCutFraction(g, original);

  // Controller watching the tracker, primed with A's expectation.
  DriftControllerOptions copts;
  copts.max_migration_fraction = config.max_migration_fraction;
  copts.reaction_passes = config.reaction_passes;
  copts.reaction_shards = config.reaction_shards;
  copts.seed = config.seed;
  DriftController controller(copts);
  controller.SetReference(MotifDistributionOf(live->Trie()),
                          result.cut_no_reaction);

  WorkloadTrackerOptions topts;
  topts.window_queries = config.tracker_window;
  WorkloadTracker tracker(/*num_labels=*/4, topts);
  Rng qrng(config.seed + 1);
  const auto observe_tick = [&](const Workload& w) {
    for (uint32_t i = 0; i < config.queries_per_tick; ++i) {
      (void)tracker.Observe(w.queries()[w.SampleIndex(qrng)].pattern);
    }
  };

  // Stationary phase: A-traffic only; the detector must stay quiet.
  for (uint32_t tick = 1; tick <= config.stationary_ticks; ++tick) {
    observe_tick(workload_a);
    if (controller.Check(tracker.SupportDistribution()).fired) {
      ++result.stationary_fires;
    }
  }

  // Drift phase: the mix switches to B. On fire, re-point LOOM at the
  // drifted snapshot and run the bounded-migration reaction.
  TpstryPP drifted_trie(/*num_labels=*/4);  // kept alive past the reaction
  for (uint32_t tick = 1; tick <= config.drift_ticks; ++tick) {
    observe_tick(workload_b);
    const MotifDistribution current = tracker.SupportDistribution();
    const DriftSignal signal = controller.Check(current);
    if (!signal.fired) continue;
    if (result.fired) {
      // Already reacted: the rebased detector must not thrash.
      ++result.post_reaction_fires;
      continue;
    }
    result.fired = true;
    result.fire_tick = tick;
    result.fire_signal = signal;

    drifted_trie = tracker.Snapshot();
    live->Partitioner().SetTrie(&drifted_trie);
    const DriftReaction reaction =
        controller.React(stream, &live->Partitioner(), current);
    result.cut_reaction = reaction.edge_cut_after;
    result.migration_reaction = reaction.migration_fraction;
    result.seconds_reaction = reaction.seconds;
    result.critical_path_reaction = reaction.critical_path_seconds;
    for (const RestreamPassStats& pass : reaction.passes) {
      result.reaction_overflow_fallbacks += pass.overflow_fallbacks;
      result.reaction_forced_placements += pass.forced_placements;
      result.reaction_assign_errors += pass.assign_errors;
      result.reaction_budget_denied_moves += pass.budget_denied_moves;
    }
  }
  if (!result.fired) {
    // Detector never confirmed drift (mis-tuned thresholds): report the
    // stale assignment as the "reaction" so the comparison stays honest.
    result.cut_reaction = result.cut_no_reaction;
  }

  // Cold baseline: fresh LOOM on the same drifted summary, full multi-pass
  // restream with unlimited migration.
  {
    TpstryPP cold_trie = result.fired ? drifted_trie : tracker.Snapshot();
    auto cold = MakePartitioner("loom", lopts, &cold_trie);
    assert(cold.ok());
    RestreamOptions ropts;
    ropts.num_passes = config.cold_passes;
    ropts.order = RestreamOrder::kGain;
    ropts.seed = config.seed;
    // The cold bracket is a fixed reference for the reaction contract, so it
    // pins the classic full-rematch replay: cluster-memoized passes regroup
    // arrivals by recorded unit, which under gain ordering can shift the cut
    // by a few tenths of a point and silently move the contract's goalposts.
    ropts.memoize_clusters = false;
    WallTimer timer;
    const Restreamer restreamer(stream, ropts);
    const RestreamResult cold_result = restreamer.Run(cold->get());
    result.seconds_cold = timer.ElapsedSeconds();
    result.cut_cold = cold_result.edge_cut_fraction;
    result.migration_cold = MigrationFraction(original, cold_result.assignment);
  }
  return result;
}

}  // namespace bench
}  // namespace loom
