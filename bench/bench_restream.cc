// Experiment E13: multi-pass restreaming (ReLDG/ReFennel/Re-LOOM). For each
// graph family and partitioner, three passes under the prioritized gain
// ordering; per pass we report raw edge cut, the anytime best cut, balance
// and migration cost (fraction of vertices that change partition). A second
// table compares inter-pass orderings on the hardest family. Expected shape:
// pass >= 2 cuts at or below pass 1, for a migration cost well under 100%;
// orderings trade final cut against migration volume.

#include <iostream>

#include "common/table.h"
#include "harness.h"
#include "restream/restreamer.h"
#include "workload/query_builders.h"

int main() {
  using namespace loom;
  using namespace loom::bench;

  const uint32_t n = 20000;
  const uint32_t k = 8;
  const uint32_t passes = 3;

  WorkloadGenOptions wopts;
  wopts.num_queries = 3;
  const Workload workload = PathWorkload(wopts);

  TablePrinter table(
      "E13 restreaming: 3 gain-ordered passes per partitioner (n=" +
          std::to_string(n) + ", k=" + std::to_string(k) + ")",
      {"graph", "partitioner", "pass", "cut", "best-cut", "balance",
       "migration"});

  const std::vector<GraphKind> kinds = {GraphKind::kErdosRenyi,
                                        GraphKind::kBarabasiAlbert,
                                        GraphKind::kWattsStrogatz};
  for (const GraphKind kind : kinds) {
    Rng rng(2026);
    LabeledGraph g = MakeGraph(kind, n, 8, LabelConfig{4, 0.3}, rng);
    const GraphStream stream = MakeStream(g, StreamOrder::kRandom, rng);

    PartitionerOptions popts;
    popts.k = k;
    popts.num_vertices_hint = g.NumVertices();
    popts.num_edges_hint = g.NumEdges();

    PartitionerSet set = MakeStandardSet(popts, workload, 0.3);
    RestreamOptions ropts;
    ropts.num_passes = passes;
    ropts.order = RestreamOrder::kGain;
    const Restreamer restreamer(stream, ropts);
    for (StreamingPartitioner* p : set.All()) {
      if (p->Name() == "hash") continue;  // ignores neighbours; nothing to gain
      const RestreamResult r = restreamer.Run(p);
      for (const RestreamPassStats& s : r.passes) {
        table.AddRow({GraphKindName(kind), p->Name(), std::to_string(s.pass),
                      FormatPercent(s.edge_cut_fraction),
                      FormatPercent(s.best_edge_cut_fraction),
                      FormatDouble(s.balance, 3),
                      FormatPercent(s.migration_fraction)});
      }
    }
  }
  table.Print(std::cout);

  TablePrinter orders(
      "E13b inter-pass orderings (barabasi-albert, ldg, " +
          std::to_string(passes) + " passes)",
      {"ordering", "final-cut", "total-migration"});
  {
    Rng rng(2027);
    LabeledGraph g =
        MakeGraph(GraphKind::kBarabasiAlbert, n, 8, LabelConfig{4, 0.3}, rng);
    const GraphStream stream = MakeStream(g, StreamOrder::kRandom, rng);
    PartitionerOptions popts;
    popts.k = k;
    popts.num_vertices_hint = g.NumVertices();
    popts.num_edges_hint = g.NumEdges();
    for (const RestreamOrder order :
         {RestreamOrder::kOriginal, RestreamOrder::kRandom,
          RestreamOrder::kGain, RestreamOrder::kAmbivalence}) {
      RestreamOptions ropts;
      ropts.num_passes = passes;
      ropts.order = order;
      const Restreamer restreamer(stream, ropts);
      auto ldg = MakePartitioner("ldg", popts);
      if (!ldg.ok()) return 1;
      const RestreamResult r = restreamer.Run(ldg->get());
      double migration = 0.0;
      for (const RestreamPassStats& s : r.passes) {
        migration += s.migration_fraction;
      }
      orders.AddRow({RestreamOrderName(order),
                     FormatPercent(r.edge_cut_fraction),
                     FormatPercent(migration)});
    }
  }
  orders.Print(std::cout);
  std::cout << "\nExpected shape: best-cut is non-increasing per pass and "
               "final cuts land well below pass one; orderings trade final "
               "cut against migration (ambivalence moves the most vertices, "
               "gain anchors confident placements early).\n";
  return 0;
}
