// loom_partition: command-line front end for the LOOM partitioner.
//
// Reads a labelled graph and a query workload, streams the graph under a
// chosen ordering through a chosen partitioner, writes the assignment, and
// reports quality metrics.
//
// Usage:
//   loom_partition --graph g.loom --workload w.loom --out assignment.loom
//                  [--partitioner loom|ldg|fennel|ldg-buffered|hash|metis]
//                  [--k 8] [--window 1024] [--threshold 0.2]
//                  [--order random|bfs|dfs|adversarial|stochastic|natural]
//                  [--slack 1.1] [--seed 42] [--traversal-weights]
//                  [--evaluate]
//
// Edge-partitioning mode (vertex-cut instead of edge-cut; no --out, the
// placements are reported rather than persisted):
//   loom_partition --graph g.loom --edge-partitioner hdrf|dbh
//                  [--k 8] [--lambda 1.0] [--max-replicas R] [--slack 1.1]
//                  [--restream-passes N] [--migration-fraction F]
//                  [--heat-weight W]   (needs --workload; hot motif labels
//                                       replicate first)

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "core/loom.h"
#include "core/partitioner_factory.h"
#include "edge_partition/edge_partitioner.h"
#include "edge_partition/edge_restream.h"
#include "edge_partition/workload_heat.h"
#include "graph/io.h"
#include "metrics/metrics.h"
#include "partition/offline_partitioner.h"
#include "partition/partition_io.h"
#include "stream/stream.h"
#include "tpstry/tpstry_pp.h"
#include "workload/query_engine.h"
#include "workload/workload_io.h"

namespace {

struct Args {
  std::string graph_path;
  std::string workload_path;
  std::string out_path;
  std::string partitioner = "loom";
  std::string order = "natural";
  uint32_t k = 8;
  size_t window = 1024;
  double threshold = 0.2;
  double slack = 1.1;
  uint64_t seed = 42;
  bool traversal_weights = false;
  bool evaluate = false;
  // Edge-partitioning mode.
  std::string edge_partitioner;
  double lambda = 1.0;
  uint32_t max_replicas = 0;
  uint32_t restream_passes = 1;
  double migration_fraction = 1.0;
  double heat_weight = 0.0;
};

bool ParseArgs(int argc, char** argv, Args* args) {
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> const char* {
      return (i + 1 < argc) ? argv[++i] : nullptr;
    };
    if (flag == "--graph") {
      const char* v = next();
      if (!v) return false;
      args->graph_path = v;
    } else if (flag == "--workload") {
      const char* v = next();
      if (!v) return false;
      args->workload_path = v;
    } else if (flag == "--out") {
      const char* v = next();
      if (!v) return false;
      args->out_path = v;
    } else if (flag == "--partitioner") {
      const char* v = next();
      if (!v) return false;
      args->partitioner = v;
    } else if (flag == "--order") {
      const char* v = next();
      if (!v) return false;
      args->order = v;
    } else if (flag == "--k") {
      const char* v = next();
      if (!v) return false;
      args->k = static_cast<uint32_t>(std::stoul(v));
    } else if (flag == "--window") {
      const char* v = next();
      if (!v) return false;
      args->window = std::stoul(v);
    } else if (flag == "--threshold") {
      const char* v = next();
      if (!v) return false;
      args->threshold = std::stod(v);
    } else if (flag == "--slack") {
      const char* v = next();
      if (!v) return false;
      args->slack = std::stod(v);
    } else if (flag == "--seed") {
      const char* v = next();
      if (!v) return false;
      args->seed = std::stoull(v);
    } else if (flag == "--traversal-weights") {
      args->traversal_weights = true;
    } else if (flag == "--evaluate") {
      args->evaluate = true;
    } else if (flag == "--edge-partitioner") {
      const char* v = next();
      if (!v) return false;
      args->edge_partitioner = v;
    } else if (flag == "--lambda") {
      const char* v = next();
      if (!v) return false;
      args->lambda = std::stod(v);
    } else if (flag == "--max-replicas") {
      const char* v = next();
      if (!v) return false;
      args->max_replicas = static_cast<uint32_t>(std::stoul(v));
    } else if (flag == "--restream-passes") {
      const char* v = next();
      if (!v) return false;
      args->restream_passes = static_cast<uint32_t>(std::stoul(v));
    } else if (flag == "--migration-fraction") {
      const char* v = next();
      if (!v) return false;
      args->migration_fraction = std::stod(v);
    } else if (flag == "--heat-weight") {
      const char* v = next();
      if (!v) return false;
      args->heat_weight = std::stod(v);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", flag.c_str());
      return false;
    }
  }
  // Edge mode reports metrics instead of writing an assignment file, so
  // --out is only required for the vertex-partitioning path.
  return !args->graph_path.empty() &&
         (!args->out_path.empty() || !args->edge_partitioner.empty());
}

loom::StreamOrder ParseOrder(const std::string& name) {
  using loom::StreamOrder;
  if (name == "random") return StreamOrder::kRandom;
  if (name == "bfs") return StreamOrder::kBfs;
  if (name == "dfs") return StreamOrder::kDfs;
  if (name == "adversarial") return StreamOrder::kAdversarial;
  if (name == "stochastic") return StreamOrder::kStochastic;
  return StreamOrder::kNatural;
}

/// True when `path` starts with the loom-stream magic (a binary .loomstrm
/// file rather than loom-graph text).
bool LooksLikeStreamFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  uint64_t magic = 0;
  const bool read = std::fread(&magic, sizeof(magic), 1, f) == 1;
  std::fclose(f);
  return read && magic == loom::kStreamFileMagic;
}

/// Edge-partitioning mode: streams `--graph` (loom-graph text, materialised
/// under `--order`, or a .loomstrm file consumed out-of-core) through an
/// HDRF/DBH edge partitioner and reports replication factor and balance.
int RunEdgePartitionMode(const Args& args, const loom::Workload& workload) {
  using namespace loom;

  std::unique_ptr<FileArrivalSource> file_source;
  std::unique_ptr<LabeledGraph> graph;
  GraphStream stream;
  std::unique_ptr<StreamCursor> cursor;
  ArrivalSource* source = nullptr;
  if (LooksLikeStreamFile(args.graph_path)) {
    auto opened = FileArrivalSource::Open(args.graph_path);
    if (!opened.ok()) {
      std::fprintf(stderr, "stream file: %s\n",
                   opened.status().ToString().c_str());
      return 1;
    }
    file_source = std::move(opened).value();
    source = file_source.get();
  } else {
    auto loaded = LoadGraph(args.graph_path);
    if (!loaded.ok()) {
      std::fprintf(stderr, "graph: %s\n",
                   loaded.status().ToString().c_str());
      return 1;
    }
    graph = std::make_unique<LabeledGraph>(std::move(loaded).value());
    Rng rng(args.seed);
    stream = MakeStream(*graph, ParseOrder(args.order), rng);
    cursor = std::make_unique<StreamCursor>(stream);
    source = cursor.get();
  }
  std::printf("stream: %llu vertices, %llu edges (%s)\n",
              static_cast<unsigned long long>(source->NumVertices()),
              static_cast<unsigned long long>(source->NumEdges()),
              file_source ? "file-backed" : "materialized");

  EdgePartitionerOptions eopts;
  eopts.k = args.k;
  eopts.lambda = args.lambda;
  eopts.num_edges_hint = source->NumEdges();
  eopts.num_vertices_hint =
      file_source ? file_source->IdBound() : source->NumVertices();
  eopts.balance_slack = args.slack;
  eopts.max_partitions_per_vertex = args.max_replicas;
  eopts.seed = args.seed;
  eopts.heat_weight = args.heat_weight;
  if (args.heat_weight > 0.0) {
    if (workload.NumQueries() == 0) {
      std::fprintf(stderr, "--heat-weight requires --workload\n");
      return 2;
    }
    // The trie only needs to span the workload's own label alphabet; heat
    // for labels past the table is zero by construction.
    uint32_t num_labels = 1;
    for (const QuerySpec& q : workload.queries()) {
      for (VertexId v = 0; v < q.pattern.NumVertices(); ++v) {
        num_labels = std::max(num_labels, q.pattern.LabelOf(v) + 1);
      }
    }
    TpstryPP trie(num_labels);
    for (const QuerySpec& q : workload.queries()) {
      const Status added = trie.AddQuery(q.pattern, q.frequency);
      if (!added.ok()) {
        std::fprintf(stderr, "workload trie: %s\n", added.ToString().c_str());
        return 1;
      }
    }
    eopts.heat = MakeLabelHeatFn(LabelHeatFromTrie(trie));
  }

  auto partitioner = MakeEdgePartitioner(args.edge_partitioner, eopts);
  if (!partitioner.ok()) {
    std::fprintf(stderr, "edge partitioner: %s\n",
                 partitioner.status().ToString().c_str());
    return 2;
  }

  EdgeRestreamOptions ropts;
  ropts.num_passes = args.restream_passes;
  ropts.max_migration_fraction = args.migration_fraction;
  EdgeRestreamer restreamer(source, ropts);
  auto run = restreamer.Run(partitioner->get());
  if (!run.ok()) {
    std::fprintf(stderr, "edge partition: %s\n",
                 run.status().ToString().c_str());
    return 1;
  }

  const EdgePartitioner& ep = **partitioner;
  std::printf("edge partition (%s, k=%u, lambda=%.2f): %llu edges placed\n",
              ep.Name().c_str(), eopts.k, eopts.lambda,
              static_cast<unsigned long long>(ep.stats().edges_assigned));
  std::printf("replication factor: %.4f  balance: %.3f\n",
              run->replication_factor, run->balance);
  for (const EdgeRestreamPassStats& pass : run->passes) {
    std::printf(
        "  pass %u: rf %.4f (best %.4f)  balance %.3f  moved %.1f%%  "
        "%.0f edges/s\n",
        pass.pass, pass.replication_factor, pass.best_replication_factor,
        pass.balance, 100.0 * pass.moved_fraction,
        pass.seconds > 0.0
            ? static_cast<double>(ep.stats().edges_assigned) / pass.seconds
            : 0.0);
  }
  if (ep.stats().assign_errors > 0 || ep.stats().cap_relaxations > 0 ||
      ep.stats().overflow_fallbacks > 0) {
    std::printf(
        "  fallbacks: %llu overflow, %llu cap relaxations, %llu errors\n",
        static_cast<unsigned long long>(ep.stats().overflow_fallbacks),
        static_cast<unsigned long long>(ep.stats().cap_relaxations),
        static_cast<unsigned long long>(ep.stats().assign_errors));
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace loom;
  Args args;
  if (!ParseArgs(argc, argv, &args)) {
    std::fprintf(stderr,
                 "usage: loom_partition --graph G --out A [--workload W] "
                 "[--partitioner loom|ldg|fennel|ldg-buffered|hash|metis] "
                 "[--k K] "
                 "[--window N] [--threshold T] [--order O] [--slack S] "
                 "[--seed N] [--traversal-weights] [--evaluate]\n"
                 "   or: loom_partition --graph G[.loomstrm] "
                 "--edge-partitioner hdrf|dbh [--k K] [--lambda L] "
                 "[--max-replicas R] [--slack S] [--restream-passes N] "
                 "[--migration-fraction F] [--heat-weight W --workload W]\n");
    return 2;
  }

  Workload workload;
  if (!args.workload_path.empty()) {
    auto loaded = LoadWorkload(args.workload_path);
    if (!loaded.ok()) {
      std::fprintf(stderr, "workload: %s\n",
                   loaded.status().ToString().c_str());
      return 1;
    }
    workload = std::move(loaded).value();
    workload.Normalize();
    std::printf("workload: %zu queries\n", workload.NumQueries());
  } else if (args.edge_partitioner.empty() && args.partitioner == "loom") {
    std::fprintf(stderr, "--partitioner loom requires --workload\n");
    return 2;
  }

  if (!args.edge_partitioner.empty()) {
    return RunEdgePartitionMode(args, workload);
  }

  auto graph = LoadGraph(args.graph_path);
  if (!graph.ok()) {
    std::fprintf(stderr, "graph: %s\n", graph.status().ToString().c_str());
    return 1;
  }
  std::printf("graph: %zu vertices, %zu edges\n", graph->NumVertices(),
              graph->NumEdges());

  Rng rng(args.seed);
  const GraphStream stream =
      MakeStream(*graph, ParseOrder(args.order), rng);

  PartitionerOptions popts;
  popts.k = args.k;
  popts.num_vertices_hint = graph->NumVertices();
  popts.num_edges_hint = graph->NumEdges();
  popts.capacity_slack = args.slack;
  popts.window_size = args.window;
  popts.seed = args.seed;

  const PartitionAssignment* result = nullptr;
  std::unique_ptr<Loom> loom_instance;
  std::unique_ptr<StreamingPartitioner> streaming;
  PartitionAssignment offline_result(args.k, 0);

  if (args.partitioner == "loom") {
    LoomOptions lopts;
    lopts.partitioner = popts;
    lopts.matcher.frequency_threshold = args.threshold;
    lopts.use_traversal_weights = args.traversal_weights;
    auto loom = Loom::Create(workload, lopts);
    if (!loom.ok()) {
      std::fprintf(stderr, "loom: %s\n", loom.status().ToString().c_str());
      return 1;
    }
    loom_instance = std::move(loom).value();
    loom_instance->Partitioner().Run(stream);
    result = &loom_instance->Partitioner().assignment();
  } else if (args.partitioner == "metis") {
    OfflineOptions oopts;
    oopts.k = args.k;
    oopts.balance_slack = args.slack;
    oopts.seed = args.seed;
    auto offline = OfflineMultilevelPartition(*graph, oopts);
    if (!offline.ok()) {
      std::fprintf(stderr, "metis: %s\n",
                   offline.status().ToString().c_str());
      return 1;
    }
    offline_result = std::move(offline).value();
    result = &offline_result;
  } else {
    auto made = MakePartitioner(args.partitioner, popts);
    if (!made.ok()) {
      std::fprintf(stderr, "unknown partitioner: %s\n",
                   args.partitioner.c_str());
      return 2;
    }
    streaming = std::move(made).value();
    streaming->Run(stream);
    result = &streaming->assignment();
  }

  const Status save = SaveAssignment(*result, args.out_path);
  if (!save.ok()) {
    std::fprintf(stderr, "save: %s\n", save.ToString().c_str());
    return 1;
  }
  std::printf("assignment: %zu vertices -> %u partitions (%s), written to %s\n",
              result->NumAssigned(), result->k(),
              SizesToString(*result).c_str(), args.out_path.c_str());
  std::printf("edge-cut: %.1f%%  balance: %.3f\n",
              100.0 * EdgeCutFraction(*graph, *result),
              BalanceMaxOverAvg(*result));

  if (args.evaluate && workload.NumQueries() > 0) {
    const WorkloadIptStats s = EvaluateWorkloadIpt(*graph, *result, workload);
    std::printf("workload: ipt-prob %.1f%%  single-partition answers %.1f%%  "
                "answer-edge cut %.1f%%\n",
                100.0 * s.ipt_probability,
                100.0 * s.single_partition_fraction,
                100.0 * s.embedding_cut_fraction);
  }
  return 0;
}
