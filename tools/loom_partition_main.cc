// loom_partition: command-line front end for the LOOM partitioner.
//
// Reads a labelled graph and a query workload, streams the graph under a
// chosen ordering through a chosen partitioner, writes the assignment, and
// reports quality metrics.
//
// Usage:
//   loom_partition --graph g.loom --workload w.loom --out assignment.loom
//                  [--partitioner loom|ldg|fennel|ldg-buffered|hash|metis]
//                  [--k 8] [--window 1024] [--threshold 0.2]
//                  [--order random|bfs|dfs|adversarial|stochastic|natural]
//                  [--slack 1.1] [--seed 42] [--traversal-weights]
//                  [--evaluate]

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

#include "core/loom.h"
#include "core/partitioner_factory.h"
#include "graph/io.h"
#include "metrics/metrics.h"
#include "partition/offline_partitioner.h"
#include "partition/partition_io.h"
#include "stream/stream.h"
#include "workload/query_engine.h"
#include "workload/workload_io.h"

namespace {

struct Args {
  std::string graph_path;
  std::string workload_path;
  std::string out_path;
  std::string partitioner = "loom";
  std::string order = "natural";
  uint32_t k = 8;
  size_t window = 1024;
  double threshold = 0.2;
  double slack = 1.1;
  uint64_t seed = 42;
  bool traversal_weights = false;
  bool evaluate = false;
};

bool ParseArgs(int argc, char** argv, Args* args) {
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> const char* {
      return (i + 1 < argc) ? argv[++i] : nullptr;
    };
    if (flag == "--graph") {
      const char* v = next();
      if (!v) return false;
      args->graph_path = v;
    } else if (flag == "--workload") {
      const char* v = next();
      if (!v) return false;
      args->workload_path = v;
    } else if (flag == "--out") {
      const char* v = next();
      if (!v) return false;
      args->out_path = v;
    } else if (flag == "--partitioner") {
      const char* v = next();
      if (!v) return false;
      args->partitioner = v;
    } else if (flag == "--order") {
      const char* v = next();
      if (!v) return false;
      args->order = v;
    } else if (flag == "--k") {
      const char* v = next();
      if (!v) return false;
      args->k = static_cast<uint32_t>(std::stoul(v));
    } else if (flag == "--window") {
      const char* v = next();
      if (!v) return false;
      args->window = std::stoul(v);
    } else if (flag == "--threshold") {
      const char* v = next();
      if (!v) return false;
      args->threshold = std::stod(v);
    } else if (flag == "--slack") {
      const char* v = next();
      if (!v) return false;
      args->slack = std::stod(v);
    } else if (flag == "--seed") {
      const char* v = next();
      if (!v) return false;
      args->seed = std::stoull(v);
    } else if (flag == "--traversal-weights") {
      args->traversal_weights = true;
    } else if (flag == "--evaluate") {
      args->evaluate = true;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", flag.c_str());
      return false;
    }
  }
  return !args->graph_path.empty() && !args->out_path.empty();
}

loom::StreamOrder ParseOrder(const std::string& name) {
  using loom::StreamOrder;
  if (name == "random") return StreamOrder::kRandom;
  if (name == "bfs") return StreamOrder::kBfs;
  if (name == "dfs") return StreamOrder::kDfs;
  if (name == "adversarial") return StreamOrder::kAdversarial;
  if (name == "stochastic") return StreamOrder::kStochastic;
  return StreamOrder::kNatural;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace loom;
  Args args;
  if (!ParseArgs(argc, argv, &args)) {
    std::fprintf(stderr,
                 "usage: loom_partition --graph G --out A [--workload W] "
                 "[--partitioner loom|ldg|fennel|ldg-buffered|hash|metis] "
                 "[--k K] "
                 "[--window N] [--threshold T] [--order O] [--slack S] "
                 "[--seed N] [--traversal-weights] [--evaluate]\n");
    return 2;
  }

  auto graph = LoadGraph(args.graph_path);
  if (!graph.ok()) {
    std::fprintf(stderr, "graph: %s\n", graph.status().ToString().c_str());
    return 1;
  }
  std::printf("graph: %zu vertices, %zu edges\n", graph->NumVertices(),
              graph->NumEdges());

  Workload workload;
  if (!args.workload_path.empty()) {
    auto loaded = LoadWorkload(args.workload_path);
    if (!loaded.ok()) {
      std::fprintf(stderr, "workload: %s\n",
                   loaded.status().ToString().c_str());
      return 1;
    }
    workload = std::move(loaded).value();
    workload.Normalize();
    std::printf("workload: %zu queries\n", workload.NumQueries());
  } else if (args.partitioner == "loom") {
    std::fprintf(stderr, "--partitioner loom requires --workload\n");
    return 2;
  }

  Rng rng(args.seed);
  const GraphStream stream =
      MakeStream(*graph, ParseOrder(args.order), rng);

  PartitionerOptions popts;
  popts.k = args.k;
  popts.num_vertices_hint = graph->NumVertices();
  popts.num_edges_hint = graph->NumEdges();
  popts.capacity_slack = args.slack;
  popts.window_size = args.window;
  popts.seed = args.seed;

  const PartitionAssignment* result = nullptr;
  std::unique_ptr<Loom> loom_instance;
  std::unique_ptr<StreamingPartitioner> streaming;
  PartitionAssignment offline_result(args.k, 0);

  if (args.partitioner == "loom") {
    LoomOptions lopts;
    lopts.partitioner = popts;
    lopts.matcher.frequency_threshold = args.threshold;
    lopts.use_traversal_weights = args.traversal_weights;
    auto loom = Loom::Create(workload, lopts);
    if (!loom.ok()) {
      std::fprintf(stderr, "loom: %s\n", loom.status().ToString().c_str());
      return 1;
    }
    loom_instance = std::move(loom).value();
    loom_instance->Partitioner().Run(stream);
    result = &loom_instance->Partitioner().assignment();
  } else if (args.partitioner == "metis") {
    OfflineOptions oopts;
    oopts.k = args.k;
    oopts.balance_slack = args.slack;
    oopts.seed = args.seed;
    auto offline = OfflineMultilevelPartition(*graph, oopts);
    if (!offline.ok()) {
      std::fprintf(stderr, "metis: %s\n",
                   offline.status().ToString().c_str());
      return 1;
    }
    offline_result = std::move(offline).value();
    result = &offline_result;
  } else {
    auto made = MakePartitioner(args.partitioner, popts);
    if (!made.ok()) {
      std::fprintf(stderr, "unknown partitioner: %s\n",
                   args.partitioner.c_str());
      return 2;
    }
    streaming = std::move(made).value();
    streaming->Run(stream);
    result = &streaming->assignment();
  }

  const Status save = SaveAssignment(*result, args.out_path);
  if (!save.ok()) {
    std::fprintf(stderr, "save: %s\n", save.ToString().c_str());
    return 1;
  }
  std::printf("assignment: %zu vertices -> %u partitions (%s), written to %s\n",
              result->NumAssigned(), result->k(),
              SizesToString(*result).c_str(), args.out_path.c_str());
  std::printf("edge-cut: %.1f%%  balance: %.3f\n",
              100.0 * EdgeCutFraction(*graph, *result),
              BalanceMaxOverAvg(*result));

  if (args.evaluate && workload.NumQueries() > 0) {
    const WorkloadIptStats s = EvaluateWorkloadIpt(*graph, *result, workload);
    std::printf("workload: ipt-prob %.1f%%  single-partition answers %.1f%%  "
                "answer-edge cut %.1f%%\n",
                100.0 * s.ipt_probability,
                100.0 * s.single_partition_fraction,
                100.0 * s.embedding_cut_fraction);
  }
  return 0;
}
