#!/usr/bin/env python3
"""Documentation structure checker (CI `docs` job, also runnable locally).

Checks, from the repository root:
  1. every public header under src/ opens with a `/// \\file` contract
     comment (within the first few lines after the include guard);
  2. every relative markdown link in README.md and docs/*.md resolves to a
     file or directory in the repository (anchors and external URLs are
     ignored).

Exit status is non-zero with one line per violation, so CI output reads as
a to-do list.
"""

import os
import re
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

# [text](target) — excluding images and absolute URLs.
LINK_RE = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)\)")


def check_file_headers():
    errors = []
    for dirpath, _, files in os.walk(os.path.join(REPO, "src")):
        for name in sorted(files):
            if not name.endswith(".h"):
                continue
            path = os.path.join(dirpath, name)
            with open(path, encoding="utf-8") as f:
                head = f.read(400)
            if "\\file" not in head:
                rel = os.path.relpath(path, REPO)
                errors.append(
                    f"{rel}: missing `/// \\file` contract comment near the top"
                )
    return errors


def markdown_files():
    yield os.path.join(REPO, "README.md")
    docs = os.path.join(REPO, "docs")
    if os.path.isdir(docs):
        for name in sorted(os.listdir(docs)):
            if name.endswith(".md"):
                yield os.path.join(docs, name)


def check_links():
    errors = []
    for md in markdown_files():
        base = os.path.dirname(md)
        rel_md = os.path.relpath(md, REPO)
        with open(md, encoding="utf-8") as f:
            text = f.read()
        for lineno, line in enumerate(text.splitlines(), 1):
            for target in LINK_RE.findall(line):
                if target.startswith(("http://", "https://", "mailto:", "#")):
                    continue
                target_path = target.split("#", 1)[0]
                if not target_path:
                    continue
                resolved = os.path.normpath(os.path.join(base, target_path))
                if not os.path.exists(resolved):
                    errors.append(
                        f"{rel_md}:{lineno}: broken relative link '{target}'"
                    )
    return errors


def main():
    errors = check_file_headers() + check_links()
    for e in errors:
        print(e)
    if errors:
        print(f"check_docs: {len(errors)} violation(s)")
        return 1
    print("check_docs: all header contracts present, all relative links resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main())
