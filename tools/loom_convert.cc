// loom_convert: builds loom-stream binary files (graph/io.h) from SNAP-style
// edge lists or from the streaming synthetic generators.
//
// Edge-list input ("u v" per line, '#'/'%' comments, SNAP's tab-separated
// dumps parse as-is) is materialised, remapped to dense first-appearance ids
// (self-loops and duplicate edges dropped), ordered, and written. Generator
// input (--gen) streams straight into the O(V)-memory StreamFileWriter and
// never materialises the graph — the path the million-vertex bench tier and
// the CI large-smoke job use.
//
// Usage:
//   loom_convert --in edges.txt --out stream.loomstrm
//                [--order original|bfs|dfs|random] [--seed 42]
//                [--num-labels L] [--back-edges-only] [--stats]
//   loom_convert --gen ba|er --n N [--degree M] [--p P] --out stream.loomstrm
//                [--seed 42] [--num-labels L] [--back-edges-only] [--stats]
//
// --order original keeps first-appearance order (a SNAP crawl's own temporal
// order); bfs/dfs/random re-order through stream/stream.h with --seed.
// --stats is a dry run: parse (or drain the generator), print the counts the
// file would carry, write nothing.

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/timer.h"
#include "graph/edge_list.h"
#include "graph/generators.h"
#include "graph/io.h"
#include "stream/stream.h"

namespace {

using loom::ArrivalSource;
using loom::ArrivalView;
using loom::LabeledGraph;
using loom::VertexId;

struct Args {
  std::string in_path;
  std::string gen;
  std::string out_path;
  std::string order = "original";
  uint64_t seed = 42;
  uint32_t num_labels = 1;
  uint32_t n = 0;
  uint32_t degree = 8;
  double p = -1.0;
  bool back_edges_only = false;
  bool stats_only = false;
};

bool ParseArgs(int argc, char** argv, Args* args) {
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> const char* {
      return (i + 1 < argc) ? argv[++i] : nullptr;
    };
    if (flag == "--in") {
      const char* v = next();
      if (!v) return false;
      args->in_path = v;
    } else if (flag == "--gen") {
      const char* v = next();
      if (!v) return false;
      args->gen = v;
    } else if (flag == "--out") {
      const char* v = next();
      if (!v) return false;
      args->out_path = v;
    } else if (flag == "--order") {
      const char* v = next();
      if (!v) return false;
      args->order = v;
    } else if (flag == "--seed") {
      const char* v = next();
      if (!v) return false;
      args->seed = std::stoull(v);
    } else if (flag == "--num-labels") {
      const char* v = next();
      if (!v) return false;
      args->num_labels = static_cast<uint32_t>(std::stoul(v));
    } else if (flag == "--n") {
      const char* v = next();
      if (!v) return false;
      args->n = static_cast<uint32_t>(std::stoul(v));
    } else if (flag == "--degree") {
      const char* v = next();
      if (!v) return false;
      args->degree = static_cast<uint32_t>(std::stoul(v));
    } else if (flag == "--p") {
      const char* v = next();
      if (!v) return false;
      args->p = std::stod(v);
    } else if (flag == "--back-edges-only") {
      args->back_edges_only = true;
    } else if (flag == "--stats") {
      args->stats_only = true;
    } else {
      std::fprintf(stderr, "loom_convert: unknown flag %s\n", flag.c_str());
      return false;
    }
  }
  if (args->in_path.empty() == args->gen.empty()) {
    std::fprintf(stderr,
                 "loom_convert: exactly one of --in and --gen is required\n");
    return false;
  }
  if (args->out_path.empty() && !args->stats_only) {
    std::fprintf(stderr, "loom_convert: --out is required (or --stats)\n");
    return false;
  }
  return true;
}

// Parses a SNAP-style edge list through the shared strict parser
// (graph/edge_list.h): self-loops/duplicates normalised with counts,
// malformed or negative ids rejected with the offending line. Vertex ids
// are remapped in first-appearance order, so dense id order IS the file's
// own temporal order and --order original is the identity permutation.
bool LoadEdgeList(const Args& args, LabeledGraph* g) {
  loom::EdgeListOptions options;
  options.num_labels = args.num_labels;
  options.seed = args.seed;
  loom::EdgeListStats stats;
  auto loaded = loom::LoadEdgeListGraph(args.in_path, options, &stats);
  if (!loaded.ok()) {
    std::fprintf(stderr, "loom_convert: %s\n",
                 loaded.status().ToString().c_str());
    return false;
  }
  *g = std::move(*loaded);
  if (stats.self_loops + stats.duplicate_edges > 0) {
    std::printf("dropped %llu self-loops, %llu duplicate edges\n",
                static_cast<unsigned long long>(stats.self_loops),
                static_cast<unsigned long long>(stats.duplicate_edges));
  }
  return true;
}

bool ParseStreamOrder(const std::string& name, loom::StreamOrder* out) {
  if (name == "original") {
    *out = loom::StreamOrder::kNatural;  // dense ids ARE first-appearance
    return true;
  }
  if (name == "bfs") {
    *out = loom::StreamOrder::kBfs;
    return true;
  }
  if (name == "dfs") {
    *out = loom::StreamOrder::kDfs;
    return true;
  }
  if (name == "random") {
    *out = loom::StreamOrder::kRandom;
    return true;
  }
  std::fprintf(stderr,
               "loom_convert: --order must be original|bfs|dfs|random\n");
  return false;
}

// Builds the streaming generator named by --gen (never materialises).
std::unique_ptr<ArrivalSource> MakeGenerator(const Args& args) {
  if (args.n == 0) {
    std::fprintf(stderr, "loom_convert: --gen requires --n\n");
    return nullptr;
  }
  const loom::LabelConfig labels{args.num_labels, 0.0};
  if (args.gen == "ba") {
    return std::make_unique<loom::BarabasiAlbertArrivalSource>(
        args.n, args.degree, labels, args.seed);
  }
  if (args.gen == "er") {
    const double p =
        args.p >= 0.0
            ? args.p
            : (args.n > 1 ? static_cast<double>(args.degree) /
                                static_cast<double>(args.n - 1)
                          : 0.0);
    return std::make_unique<loom::ErdosRenyiArrivalSource>(args.n, p, labels,
                                                           args.seed);
  }
  std::fprintf(stderr, "loom_convert: --gen must be ba|er\n");
  return nullptr;
}

// --stats for generators: one O(V)-memory drain counting what a write would
// record.
int GeneratorStats(ArrivalSource& source) {
  uint64_t vertices = 0;
  uint64_t edges = 0;
  uint64_t max_degree = 0;
  ArrivalView view;
  while (source.Next(&view)) {
    ++vertices;
    edges += view.back_edges.size();
    max_degree = std::max<uint64_t>(max_degree, view.back_edges.size());
  }
  std::printf("vertices: %llu\nedges: %llu\nmax back-degree: %llu\n"
              "avg degree: %.2f\n",
              static_cast<unsigned long long>(vertices),
              static_cast<unsigned long long>(edges),
              static_cast<unsigned long long>(max_degree),
              vertices > 0 ? 2.0 * static_cast<double>(edges) /
                                 static_cast<double>(vertices)
                           : 0.0);
  return 0;
}

int GraphStats(const LabeledGraph& g) {
  uint64_t max_degree = 0;
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    max_degree = std::max<uint64_t>(max_degree, g.Degree(v));
  }
  std::printf("vertices: %zu\nedges: %zu\nmax degree: %llu\n"
              "avg degree: %.2f\nlabels: %zu\n",
              g.NumVertices(), g.NumEdges(),
              static_cast<unsigned long long>(max_degree),
              g.NumVertices() > 0 ? 2.0 * static_cast<double>(g.NumEdges()) /
                                        static_cast<double>(g.NumVertices())
                                  : 0.0,
              g.NumLabels());
  return 0;
}

int WriteFromSource(const Args& args, ArrivalSource& source) {
  loom::StreamFileOptions options;
  options.full_neighborhoods = !args.back_edges_only;
  auto writer = loom::StreamFileWriter::Create(args.out_path, options);
  if (!writer.ok()) {
    std::fprintf(stderr, "loom_convert: %s\n",
                 writer.status().ToString().c_str());
    return 1;
  }
  loom::Status status = (*writer)->AppendAll(source);
  if (status.ok()) status = (*writer)->Finish();
  if (!status.ok()) {
    std::fprintf(stderr, "loom_convert: %s\n", status.ToString().c_str());
    return 1;
  }
  const loom::StreamFileInfo& info = (*writer)->info();
  std::printf("wrote %s: %llu vertices, %llu edges, %llu bytes "
              "(%s), peak rss %.1f MiB\n",
              args.out_path.c_str(),
              static_cast<unsigned long long>(info.num_vertices),
              static_cast<unsigned long long>(info.num_edges),
              static_cast<unsigned long long>(info.file_bytes),
              info.has_full_neighborhoods ? "full neighborhoods"
                                          : "back edges only",
              static_cast<double>(loom::PeakRssBytes()) / (1024.0 * 1024.0));
  return 0;
}

int Main(int argc, char** argv) {
  Args args;
  if (!ParseArgs(argc, argv, &args)) {
    std::fprintf(
        stderr,
        "usage: loom_convert (--in edges.txt | --gen ba|er --n N) "
        "--out FILE [--order original|bfs|dfs|random] [--seed N] "
        "[--num-labels L] [--degree M] [--p P] [--back-edges-only] "
        "[--stats]\n");
    return 2;
  }

  if (!args.gen.empty()) {
    std::unique_ptr<ArrivalSource> source = MakeGenerator(args);
    if (source == nullptr) return 2;
    if (args.order != "original") {
      std::fprintf(stderr,
                   "loom_convert: --gen streams in arrival order; --order "
                   "is only for --in\n");
      return 2;
    }
    if (args.stats_only) return GeneratorStats(*source);
    return WriteFromSource(args, *source);
  }

  LabeledGraph g;
  if (!LoadEdgeList(args, &g)) return 1;
  if (args.stats_only) return GraphStats(g);

  loom::StreamOrder order;
  if (!ParseStreamOrder(args.order, &order)) return 2;
  loom::Rng rng(args.seed);
  const loom::GraphStream stream = loom::MakeStream(g, order, rng);
  loom::StreamCursor cursor(stream);
  return WriteFromSource(args, cursor);
}

}  // namespace

int main(int argc, char** argv) { return Main(argc, argv); }
