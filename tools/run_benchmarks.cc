// run_benchmarks: machine-readable perf baseline driver.
//
// Runs a fast subset of the bench/ experiments (edge-cut quality across the
// standard partitioner set, multi-pass restreaming, the sharded parallel
// restream sweep, the drift-reaction scenario, self-timed microbenchmarks
// of the hot paths, and the end-to-end streaming-throughput harness) and
// writes BENCH_edge_cut.json and BENCH_micro.json so successive PRs can
// regress against a recorded trajectory. The JSON schema is documented in
// docs/BENCH_SCHEMA.md.
//
// Usage:
//   run_benchmarks [--fast] [--full] [--out DIR] [--threads N]
//                  [--large-n N] [--large-degree M] [--large-file PATH]
//
// --fast (default) keeps total runtime to a few seconds; --full runs the
// paper-scale configuration — including the LiveJournal-class `large` tier
// (~5M vertices / ~50M edges, file-backed). --threads N caps the
// parallel-restream sweep's shard counts (default 4; powers of two up to
// N). --large-n / --large-degree override the large tier's synthetic scale;
// --large-file points it at a pre-built loom-stream file instead. Exit
// status is non-zero on any failure — including a peak-RSS reading above
// the large tier's O(V) ceiling — and the JSON files are only left behind
// when every section succeeded.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "common/timer.h"
#include "drift_scenario.h"
#include "edge_partition/edge_partitioner.h"
#include "edge_partition/edge_restream.h"
#include "graph/io.h"
#include "perf_report.h"
#include "restream/restreamer.h"
#include "serving_scenario.h"
#include "workload/query_builders.h"

namespace loom {
namespace bench {
namespace {

// ------------------------------------------------------------------- large

// File-backed out-of-core tier: streaming generator -> loom-stream file ->
// ldg pass one + one gain-ordered restream pass, all through the mmap-ed
// FileArrivalSource, never materialising the graph. MUST run before every
// in-memory section: PeakRssBytes() is a process-wide high-water mark, so
// the O(V) assertion is only meaningful while nothing else has built O(E)
// state yet.
struct LargeConfig {
  uint64_t n = 60000;
  /// Barabási–Albert attachments per vertex (edges ~= n * degree).
  uint32_t degree = 10;
  uint32_t k = 16;
  uint64_t seed = 2024;
  /// Pre-built loom-stream file to use instead of generating (kept on disk);
  /// empty = generate into `work_dir` and remove afterwards.
  std::string file;
  std::string work_dir = ".";
};

// RSS ceiling model asserted by the section: a fixed process base (binary,
// allocator, the writer's fill buffer and the reader's residency budget)
// plus a per-vertex allowance for the O(V) state the out-of-core path
// legitimately holds — writer index arrays, ordering keys, permutation,
// prior + live assignments, the generator's Fenwick tree. 80 bytes/vertex
// covers those (~20 u32/u64 arrays' worth) with modest headroom; the
// measured full-scale peak is ~124 B/vertex total including the base. The
// model has NO per-edge term on purpose: the full-scale run keeps ~400MB of
// edge slices on disk, so an O(E) regression (materialising adjacency at
// 8+ bytes/edge, mapping pages without dropping them) blows through the
// ceiling immediately.
constexpr uint64_t kLargeRssBaseBytes = 256ull << 20;
constexpr uint64_t kLargeRssPerVertexBytes = 80;

// The workload-aware row of the large tier: LOOM through the same
// out-of-core replay, three original-order passes with cluster memoization
// on vs off (A/B on the identical file), reporting pass-one throughput,
// the memoized and non-memoized restream-pass seconds, and the recall
// counters. Runs under the same O(V) peak-RSS ceiling as the ldg row —
// the memo structures (log, fingerprints, unit index, grouped permutation)
// are all O(V) by design.
bool RunLargeLoomRow(const LargeConfig& cfg, FileArrivalSource& file,
                     uint64_t rss_ceiling, std::vector<JsonObject>* rows) {
  Workload workload;
  Status ws = workload.Add("tri", TriangleQuery(0, 1, 2), 1.0);
  if (ws.ok()) ws = workload.Add("ab", PathQuery({0, 1}), 1.0);
  if (!ws.ok()) {
    std::cerr << "run_benchmarks: large tier workload: " << ws.ToString()
              << "\n";
    return false;
  }
  workload.Normalize();

  LoomOptions lopts;
  lopts.partitioner.k = cfg.k;
  lopts.partitioner.num_vertices_hint = file.NumVertices();
  lopts.partitioner.num_edges_hint = file.NumEdges();
  lopts.partitioner.window_size = 256;
  lopts.matcher.frequency_threshold = 0.2;

  RestreamOptions on;
  on.num_passes = 3;
  on.order = RestreamOrder::kOriginal;
  RestreamOptions off = on;
  off.memoize_clusters = false;

  const auto restream_seconds = [](const RestreamResult& r) {
    double s = 0.0;
    for (size_t p = 1; p < r.passes.size(); ++p) s += r.passes[p].seconds;
    return s;
  };

  auto loom_on = Loom::Create(workload, lopts);
  auto loom_off = Loom::Create(workload, lopts);
  if (!loom_on.ok() || !loom_off.ok()) {
    std::cerr << "run_benchmarks: large tier loom creation failed\n";
    return false;
  }
  const Restreamer r_on(&file, on);
  const RestreamResult res_on = r_on.Run(&(*loom_on)->Partitioner());
  const Restreamer r_off(&file, off);
  const RestreamResult res_off = r_off.Run(&(*loom_off)->Partitioner());

  const uint64_t peak = PeakRssBytes();
  if (peak == 0 || peak > rss_ceiling) {
    std::cerr << "run_benchmarks: large tier (loom) peak RSS " << peak
              << " bytes exceeds the O(V) ceiling " << rss_ceiling
              << " bytes\n";
    return false;
  }
  if (r_on.materializations() != 0 || r_off.materializations() != 0) {
    std::cerr << "run_benchmarks: large tier (loom) materialised O(E) state "
                 "(out-of-core replay must not)\n";
    return false;
  }
  for (const RestreamResult* r : {&res_on, &res_off}) {
    for (const RestreamPassStats& p : r->passes) {
      if (p.assign_errors != 0) {
        std::cerr << "run_benchmarks: large tier (loom) assign errors\n";
        return false;
      }
    }
  }
  // Last-pass recall counters from the memoized run (the partitioner holds
  // the final pass's stats).
  const LoomStats& stats = (*loom_on)->Partitioner().loom_stats();
  const double sec_on = restream_seconds(res_on);
  const double sec_off = restream_seconds(res_off);

  JsonObject row;
  row.Add("tier", std::string(cfg.file.empty() ? "file-backed-ba"
                                               : "file-backed-input"));
  row.Add("partitioner", std::string("loom"));
  row.Add("ordering", RestreamOrderName(on.order));
  row.Add("num_vertices", file.NumVertices());
  row.Add("num_edges", file.NumEdges());
  row.Add("k", static_cast<uint64_t>(cfg.k));
  row.Add("partition_seconds", res_on.passes.front().seconds);
  row.Add("vertices_per_second",
          res_on.passes.front().seconds > 0
              ? static_cast<double>(file.NumVertices()) /
                    res_on.passes.front().seconds
              : 0.0);
  row.Add("restream_seconds", sec_on);
  row.Add("restream_seconds_nomemo", sec_off);
  row.Add("memo_restream_speedup", sec_on > 0 ? sec_off / sec_on : 0.0);
  row.Add("memo_units", stats.memo_units);
  row.Add("memo_vertices", stats.memo_vertices);
  row.Add("memo_invalidated", stats.memo_invalidated);
  row.Add("edge_cut_fraction_pass1", res_on.passes.front().edge_cut_fraction);
  row.Add("edge_cut_fraction", res_on.edge_cut_fraction);
  row.Add("edge_cut_fraction_nomemo", res_off.edge_cut_fraction);
  row.Add("balance", res_on.passes.back().balance);
  row.Add("peak_rss_bytes", peak);
  row.Add("rss_ceiling_bytes", rss_ceiling);
  row.AddRaw("rss_ok", "true");
  rows->push_back(std::move(row));
  return true;
}

// File-backed edge-partitioning rows (vertex-cut): HDRF and DBH stream the
// same loom-stream file end-to-end and report replication factor and
// balance. Emitted into the `edge_partition` section (tier field set), not
// `large`, so the two cut models keep separate row schemas. Runs while the
// large tier's file still exists and before the in-memory sections, under
// the same O(V) state discipline (no placement log).
bool RunLargeEdgePartitionRows(const LargeConfig& cfg, FileArrivalSource& file,
                               bool generated,
                               std::vector<JsonObject>* rows) {
  for (const char* name : {"hdrf", "dbh"}) {
    EdgePartitionerOptions eopts;
    eopts.k = cfg.k;
    eopts.lambda = 1.0;
    eopts.num_edges_hint = file.NumEdges();
    eopts.num_vertices_hint = file.IdBound();
    eopts.seed = cfg.seed;
    eopts.record_placements = false;  // keep the tier O(V), not O(E)
    auto partitioner = MakeEdgePartitioner(name, eopts);
    if (!partitioner.ok()) {
      std::cerr << "run_benchmarks: edge partitioner: "
                << partitioner.status().ToString() << "\n";
      return false;
    }
    file.Reset();
    const WallTimer timer;
    (*partitioner)->Run(file);
    const double seconds = timer.ElapsedSeconds();

    const EdgePartitionerStats& stats = (*partitioner)->stats();
    if (stats.assign_errors != 0 ||
        stats.edges_assigned != file.NumEdges()) {
      std::cerr << "run_benchmarks: edge partition contract violated ("
                << name << ")\n";
      return false;
    }
    JsonObject row;
    row.Add("tier", std::string(generated ? "file-backed-ba"
                                          : "file-backed-input"));
    row.Add("graph", std::string("barabasi-albert"));
    row.Add("partitioner", std::string(name));
    row.Add("lambda", eopts.lambda);
    row.Add("k", static_cast<uint64_t>(cfg.k));
    row.Add("restream_passes", static_cast<uint64_t>(1));
    row.Add("num_vertices", file.NumVertices());
    row.Add("num_edges", file.NumEdges());
    row.Add("replication_factor", ReplicationFactor((*partitioner)->replicas()));
    row.Add("balance", EdgeBalanceMaxOverAvg((*partitioner)->edge_counts()));
    row.Add("seconds", seconds);
    row.Add("edges_per_second",
            seconds > 0 ? static_cast<double>(stats.edges_assigned) / seconds
                        : 0.0);
    row.Add("overflow_fallbacks", stats.overflow_fallbacks);
    row.Add("cap_relaxations", stats.cap_relaxations);
    row.Add("assign_errors", stats.assign_errors);
    row.Add("peak_rss_bytes", PeakRssBytes());
    rows->push_back(std::move(row));
  }
  return true;
}

bool RunLargeSection(const LargeConfig& cfg, std::vector<JsonObject>* rows,
                     std::vector<JsonObject>* edge_partition_rows) {
  const bool generated = cfg.file.empty();
  const std::string path =
      generated ? cfg.work_dir + "/.bench_large.loomstrm" : cfg.file;

  double generate_seconds = 0.0;
  if (generated) {
    WallTimer timer;
    BarabasiAlbertArrivalSource source(static_cast<uint32_t>(cfg.n),
                                       cfg.degree, LabelConfig{4, 0.0},
                                       cfg.seed);
    auto writer = StreamFileWriter::Create(path);
    if (!writer.ok()) {
      std::cerr << "run_benchmarks: large tier writer: "
                << writer.status().ToString() << "\n";
      return false;
    }
    Status status = (*writer)->AppendAll(source);
    if (status.ok()) status = (*writer)->Finish();
    if (!status.ok()) {
      std::cerr << "run_benchmarks: large tier write: " << status.ToString()
                << "\n";
      return false;
    }
    generate_seconds = timer.ElapsedSeconds();
  }

  bool ok = false;
  {
    auto opened = FileArrivalSource::Open(path);
    if (!opened.ok()) {
      std::cerr << "run_benchmarks: large tier open: "
                << opened.status().ToString() << "\n";
    } else {
      FileArrivalSource& file = **opened;

      PartitionerOptions popts;
      popts.k = cfg.k;
      popts.num_vertices_hint = file.NumVertices();
      popts.num_edges_hint = file.NumEdges();
      auto ldg = MakePartitioner("ldg", popts);
      if (!ldg.ok()) {
        std::cerr << "run_benchmarks: large tier partitioner: "
                  << ldg.status().ToString() << "\n";
      } else {
        RestreamOptions ropts;
        ropts.num_passes = 2;  // pass one + one incremental replay pass
        ropts.order = RestreamOrder::kGain;
        const Restreamer restreamer(&file, ropts);
        const RestreamResult r = restreamer.Run(ldg->get());

        const uint64_t peak = PeakRssBytes();
        const uint64_t ceiling =
            kLargeRssBaseBytes + kLargeRssPerVertexBytes * file.IdBound();
        const bool rss_ok = peak > 0 && peak <= ceiling;
        const RestreamPassStats& p1 = r.passes.front();
        const RestreamPassStats& p2 = r.passes.back();

        if (r.passes.size() != 2 || p1.forced_placements != 0 ||
            p1.assign_errors != 0 || p2.assign_errors != 0) {
          std::cerr << "run_benchmarks: large tier partition contract "
                       "violated\n";
        } else if (restreamer.materializations() != 0) {
          std::cerr << "run_benchmarks: large tier materialised "
                    << restreamer.materializations()
                    << "x O(E) state (out-of-core replay must not)\n";
        } else if (!rss_ok) {
          std::cerr << "run_benchmarks: large tier peak RSS " << peak
                    << " bytes exceeds the O(V) ceiling " << ceiling
                    << " bytes\n";
        } else {
          JsonObject row;
          row.Add("tier", std::string(generated ? "file-backed-ba"
                                                : "file-backed-input"));
          row.Add("partitioner", std::string("ldg"));
          row.Add("ordering", RestreamOrderName(ropts.order));
          row.Add("num_vertices", file.NumVertices());
          row.Add("num_edges", file.NumEdges());
          row.Add("file_bytes", file.info().file_bytes);
          row.Add("k", static_cast<uint64_t>(cfg.k));
          row.Add("generate_seconds", generate_seconds);
          row.Add("partition_seconds", p1.seconds);
          row.Add("restream_seconds", p2.seconds);
          row.Add("vertices_per_second",
                  p1.seconds > 0
                      ? static_cast<double>(file.NumVertices()) / p1.seconds
                      : 0.0);
          row.Add("edge_cut_fraction_before", p1.edge_cut_fraction);
          row.Add("edge_cut_fraction_after", r.edge_cut_fraction);
          row.Add("migration_fraction", p2.migration_fraction);
          row.Add("balance", p2.balance);
          row.Add("materializations", restreamer.materializations());
          row.Add("peak_rss_bytes", peak);
          row.Add("rss_ceiling_bytes", ceiling);
          row.AddRaw("rss_ok", "true");
          rows->push_back(std::move(row));
          ok = RunLargeLoomRow(cfg, file, ceiling, rows) &&
               RunLargeEdgePartitionRows(cfg, file, generated,
                                         edge_partition_rows);
        }
      }
    }
  }
  if (generated) std::remove(path.c_str());
  return ok;
}

// ----------------------------------------------------------------- edge cut

struct EdgeCutConfig {
  uint32_t n = 4000;
  uint32_t k = 8;
  uint32_t avg_degree = 8;
  uint64_t seed = 2024;
  std::vector<GraphKind> kinds;
};

// Multi-pass restreaming rows: for ldg, fennel and loom, three gain-ordered
// passes per graph family, each row one pass with its raw cut, the anytime
// best cut, balance, migration cost and overflow counters. Later PRs (and
// the restream ctest suite) regress against the monotone best-cut contract.
bool RunRestreamRows(const EdgeCutConfig& cfg, const Workload& workload,
                     std::vector<JsonObject>* rows) {
  for (const GraphKind kind : cfg.kinds) {
    Rng rng(cfg.seed + 1);
    LabeledGraph g = MakeGraph(kind, cfg.n, cfg.avg_degree,
                               LabelConfig{4, 0.3}, rng);
    const GraphStream stream = MakeStream(g, StreamOrder::kRandom, rng);

    PartitionerOptions popts;
    popts.k = cfg.k;
    popts.num_vertices_hint = g.NumVertices();
    popts.num_edges_hint = g.NumEdges();

    PartitionerSet set = MakeStandardSet(popts, workload, 0.3);
    RestreamOptions ropts;
    ropts.num_passes = 3;
    ropts.order = RestreamOrder::kGain;
    const Restreamer restreamer(stream, ropts);
    for (StreamingPartitioner* p : set.All()) {
      const std::string name = p->Name();
      if (name != "ldg" && name != "fennel" && name != "loom") continue;
      const RestreamResult r = restreamer.Run(p);
      for (const RestreamPassStats& s : r.passes) {
        if (s.forced_placements != 0) {
          std::cerr << "run_benchmarks: restream pass forced placements past "
                       "capacity (" << name << ")\n";
          return false;
        }
        JsonObject row;
        row.Add("graph", GraphKindName(kind));
        row.Add("partitioner", name);
        row.Add("pass", static_cast<uint64_t>(s.pass));
        row.Add("ordering", RestreamOrderName(ropts.order));
        row.Add("edge_cut_fraction", s.edge_cut_fraction);
        row.Add("best_edge_cut_fraction", s.best_edge_cut_fraction);
        row.Add("balance", s.balance);
        row.Add("migration_fraction", s.migration_fraction);
        row.Add("overflow_fallbacks", s.overflow_fallbacks);
        row.Add("forced_placements", s.forced_placements);
        row.Add("assign_errors", s.assign_errors);
        row.Add("seconds", s.seconds);
        row.Add("peak_rss_bytes", PeakRssBytes());
        rows->push_back(std::move(row));
      }
    }
  }
  if (rows->empty()) {
    std::cerr << "run_benchmarks: restream section produced no rows\n";
    return false;
  }
  return true;
}

// Parallel-restream rows: for ldg and loom on each graph family, one
// damped drift-style reaction (decisive ordering, 25% cumulative budget,
// live single-pass assignment as prior, `kReactionPasses` budgeted passes
// spending half the remaining budget each — all of it on the last — with
// keep-best adoption) per shard count in {1, 2, 4, ..., threads}, all on
// the same pass schedule so the only variable is the worker count. Every
// row records the final cut, migration, measured wall seconds and the
// share-nothing critical path (per pass: serial setup + slowest shard's
// thread-CPU seconds + merge — the reaction latency with one free core per
// shard; wall time cannot shrink on a machine with fewer free cores), plus
// the speedup of that critical path over the serial reference reaction.
// The driver itself enforces the section's hard invariants — global budget
// respected, no forced placements, 1-shard bit-equivalence with the serial
// RunIncrementalPass-based reaction — and CI re-asserts them from the
// JSON.
struct ParallelReactionResult {
  PartitionAssignment assignment{1, 0};
  double edge_cut = 0.0;
  double migration = 0.0;
  double wall_seconds = 0.0;
  double critical_path_seconds = 0.0;
  uint64_t budget_denied_moves = 0;
  uint64_t overflow_fallbacks = 0;
  uint64_t forced_placements = 0;
  uint64_t assign_errors = 0;
  double balance = 0.0;
};

constexpr uint32_t kReactionPasses = 4;

// Runs the damped keep-best reaction at `num_shards` (0 = the serial
// RunIncrementalPass reference — identical schedule, serial engine).
ParallelReactionResult RunParallelReaction(const Restreamer& restreamer,
                                           const LabeledGraph& g,
                                           StreamingPartitioner* p,
                                           const PartitionAssignment& original,
                                           uint64_t total_budget,
                                           uint32_t num_shards) {
  ParallelReactionResult r;
  PartitionAssignment prior = original;
  r.assignment = original;
  double best_cut = EdgeCutFraction(g, original);
  // One pool for the whole reaction — thread spin-up is paid once, not per
  // pass, which is what the wall_speedup column measures.
  std::unique_ptr<ThreadPool> pool;
  if (num_shards > 0) pool = std::make_unique<ThreadPool>(num_shards);
  for (uint32_t pass = 1; pass <= kReactionPasses; ++pass) {
    const size_t spent = ComputeMigration(original, prior).moved;
    const uint64_t remaining =
        total_budget > spent ? total_budget - spent : 0;
    if (remaining == 0) break;
    const uint64_t pass_budget =
        pass < kReactionPasses ? (remaining + 1) / 2 : remaining;
    const RestreamPassStats stats =
        num_shards == 0
            ? restreamer.RunIncrementalPass(p, prior, pass_budget)
            : restreamer.RunShardedIncrementalPass(p, prior, pass_budget,
                                                   num_shards, pool.get());
    r.wall_seconds += stats.seconds;
    r.critical_path_seconds += num_shards <= 1
                                   ? stats.seconds
                                   : stats.critical_path_seconds;
    r.budget_denied_moves += stats.budget_denied_moves;
    r.overflow_fallbacks += stats.overflow_fallbacks;
    r.forced_placements += stats.forced_placements;
    r.assign_errors += stats.assign_errors;
    if (stats.edge_cut_fraction < best_cut) {
      best_cut = stats.edge_cut_fraction;
      r.assignment = p->assignment();
    }
    prior = p->assignment();
  }
  r.edge_cut = best_cut;
  r.migration = MigrationFraction(original, r.assignment);
  r.balance = BalanceMaxOverAvg(r.assignment);
  return r;
}

bool RunParallelRestreamRows(const EdgeCutConfig& cfg,
                             const Workload& workload, uint32_t threads,
                             std::vector<JsonObject>* rows) {
  const double kBudgetFraction = 0.25;
  std::vector<uint32_t> shard_counts;
  for (uint32_t s = 1; s <= threads; s *= 2) shard_counts.push_back(s);

  for (const GraphKind kind : cfg.kinds) {
    Rng rng(cfg.seed + 2);
    LabeledGraph g = MakeGraph(kind, cfg.n, cfg.avg_degree,
                               LabelConfig{4, 0.3}, rng);
    const GraphStream stream = MakeStream(g, StreamOrder::kRandom, rng);

    PartitionerOptions popts;
    popts.k = cfg.k;
    popts.num_vertices_hint = g.NumVertices();
    popts.num_edges_hint = g.NumEdges();

    PartitionerSet set = MakeStandardSet(popts, workload, 0.3);
    RestreamOptions ropts;
    ropts.order = RestreamOrder::kDecisive;
    const Restreamer restreamer(stream, ropts);

    for (StreamingPartitioner* p : set.All()) {
      const std::string name = p->Name();
      if (name != "ldg" && name != "loom") continue;

      // Live prior: the single-pass assignment a drift reaction starts
      // from.
      p->Run(stream);
      const PartitionAssignment prior = p->assignment();
      const uint64_t budget = MigrationBudgetMoves(prior, kBudgetFraction);

      const ParallelReactionResult serial = RunParallelReaction(
          restreamer, g, p, prior, budget, /*num_shards=*/0);

      for (const uint32_t num_shards : shard_counts) {
        const ParallelReactionResult r = RunParallelReaction(
            restreamer, g, p, prior, budget, num_shards);

        const size_t moved = ComputeMigration(prior, r.assignment).moved;
        if (moved > budget || r.forced_placements != 0 ||
            r.assign_errors != 0) {
          std::cerr << "run_benchmarks: parallel restream invariant "
                       "violated ("
                    << name << ", shards=" << num_shards
                    << ": moved=" << moved << "/" << budget
                    << ", forced=" << r.forced_placements
                    << ", errors=" << r.assign_errors << ")\n";
          return false;
        }
        bool serial_equivalent = true;
        if (num_shards == 1) {
          const size_t bound = std::max(serial.assignment.IdBound(),
                                        r.assignment.IdBound());
          for (VertexId v = 0; v < bound && serial_equivalent; ++v) {
            serial_equivalent =
                serial.assignment.PartOf(v) == r.assignment.PartOf(v);
          }
          if (!serial_equivalent) {
            std::cerr << "run_benchmarks: 1-shard reaction diverged from "
                         "the serial RunIncrementalPass reaction ("
                      << name << ")\n";
            return false;
          }
        }

        JsonObject row;
        row.Add("graph", GraphKindName(kind));
        row.Add("partitioner", name);
        row.Add("ordering", RestreamOrderName(ropts.order));
        row.Add("num_shards", static_cast<uint64_t>(num_shards));
        row.Add("reaction_passes", static_cast<uint64_t>(kReactionPasses));
        row.Add("edge_cut_fraction", r.edge_cut);
        row.Add("serial_edge_cut_fraction", serial.edge_cut);
        row.Add("balance", r.balance);
        row.Add("migration_fraction", r.migration);
        row.Add("max_migration_fraction", kBudgetFraction);
        row.Add("migration_budget_moves", budget);
        row.Add("prior_moves", static_cast<uint64_t>(moved));
        row.Add("budget_denied_moves", r.budget_denied_moves);
        row.Add("overflow_fallbacks", r.overflow_fallbacks);
        row.Add("forced_placements", r.forced_placements);
        row.Add("assign_errors", r.assign_errors);
        row.Add("seconds", r.wall_seconds);
        row.Add("peak_rss_bytes", PeakRssBytes());
        row.Add("critical_path_seconds", r.critical_path_seconds);
        row.Add("serial_seconds", serial.wall_seconds);
        row.Add("speedup_vs_serial",
                r.critical_path_seconds > 0.0
                    ? serial.wall_seconds / r.critical_path_seconds
                    : 0.0);
        row.Add("wall_speedup", r.wall_seconds > 0.0
                                    ? serial.wall_seconds / r.wall_seconds
                                    : 0.0);
        // Only the 1-shard row carries the bit-equivalence verdict — it is
        // the only row the check runs on (multi-shard results legitimately
        // differ from the serial engine's).
        if (num_shards == 1) {
          row.AddRaw("serial_equivalent",
                     serial_equivalent ? "true" : "false");
        }
        rows->push_back(std::move(row));
      }
    }
  }
  if (rows->empty()) {
    std::cerr
        << "run_benchmarks: parallel restream section produced no rows\n";
    return false;
  }
  return true;
}

// Drift rows: the piecewise-stationary scenario (bench/drift_scenario.h),
// one row per strategy — no-reaction (stale live assignment), the budgeted
// drift reaction, and the cold multi-pass restream. CI's bench-smoke job
// asserts the reaction contract on these rows: detector fired and stayed
// quiet when it should, cut within 2 points of cold, migration <= budget,
// and no silent capacity pressure (overflow/forced/assign-error counts are
// in the row, and must be zero).
bool RunDriftRows(bool fast, std::vector<JsonObject>* rows) {
  DriftScenarioConfig config;
  if (!fast) config.n = 20000;
  const DriftScenarioResult r = RunDriftScenario(config);

  if (!r.fired || r.stationary_fires != 0 || r.post_reaction_fires != 0) {
    std::cerr << "run_benchmarks: drift detector contract violated (fired="
              << r.fired << ", stationary=" << r.stationary_fires
              << ", post-reaction=" << r.post_reaction_fires << ")\n";
    return false;
  }

  const auto common = [&](JsonObject* row) {
    row->Add("scenario", std::string("piecewise-stationary"));
    row->Add("peak_rss_bytes", PeakRssBytes());
    row->Add("max_migration_fraction", r.max_migration_fraction);
    row->Add("fire_tick", static_cast<uint64_t>(r.fire_tick));
    row->Add("stationary_fires", static_cast<uint64_t>(r.stationary_fires));
    row->Add("post_reaction_fires",
             static_cast<uint64_t>(r.post_reaction_fires));
  };

  JsonObject none;
  common(&none);
  none.Add("strategy", std::string("no-reaction"));
  none.Add("edge_cut_fraction", r.cut_no_reaction);
  none.Add("migration_fraction", 0.0);
  none.Add("seconds", 0.0);
  rows->push_back(std::move(none));

  JsonObject reaction;
  common(&reaction);
  reaction.Add("strategy", std::string("drift-reaction"));
  reaction.Add("edge_cut_fraction", r.cut_reaction);
  reaction.Add("migration_fraction", r.migration_reaction);
  reaction.Add("seconds", r.seconds_reaction);
  reaction.Add("overflow_fallbacks", r.reaction_overflow_fallbacks);
  reaction.Add("forced_placements", r.reaction_forced_placements);
  reaction.Add("assign_errors", r.reaction_assign_errors);
  reaction.Add("budget_denied_moves", r.reaction_budget_denied_moves);
  reaction.Add("detection_js", r.fire_signal.js);
  reaction.Add("detection_l1", r.fire_signal.l1);
  rows->push_back(std::move(reaction));

  JsonObject cold;
  common(&cold);
  cold.Add("strategy", std::string("cold-restream"));
  cold.Add("edge_cut_fraction", r.cut_cold);
  cold.Add("migration_fraction", r.migration_cold);
  cold.Add("seconds", r.seconds_cold);
  rows->push_back(std::move(cold));
  return true;
}

// Serving rows: the concurrent serving-under-drift scenario
// (bench/serving_scenario.h), one row per operation kind — ingest-batch,
// locate and touches — each carrying its tail latencies plus the shared
// structural outcomes. CI's bench-smoke job asserts: non-zero query counts,
// p50 <= p99 <= p999 per row, at least one drift reaction, queries served
// during it, and zero assign errors.
bool RunServingRows(bool fast, std::vector<JsonObject>* rows) {
  ServingScenarioConfig config;
  if (!fast) config.n = 20000;
  const ServingScenarioResult r = RunServingScenario(config);

  if (!r.ok) {
    std::cerr << "run_benchmarks: serving scenario contract violated "
                 "(reactions="
              << r.drift_reactions << ", assign_errors=" << r.assign_errors
              << ", ingested=" << r.ingested_vertices << ")\n";
    return false;
  }

  const auto common = [&](JsonObject* row) {
    row->Add("scenario", std::string("serving-under-drift"));
    row->Add("peak_rss_bytes", PeakRssBytes());
    row->Add("num_clients", static_cast<uint64_t>(config.num_clients));
    row->Add("front_end_shards",
             static_cast<uint64_t>(config.front_end_shards));
    row->Add("drift_fires", r.drift_fires);
    row->Add("drift_reactions", r.drift_reactions);
    row->Add("queries_during_reaction", r.queries_during_reaction);
    row->Add("assign_errors", r.assign_errors);
    row->Add("snapshot_epoch", r.snapshot_epoch);
  };
  const auto latency = [](JsonObject* row, const LatencySummary& summary) {
    row->Add("count", summary.count);
    row->Add("p50_seconds", summary.p50_seconds);
    row->Add("p99_seconds", summary.p99_seconds);
    row->Add("p999_seconds", summary.p999_seconds);
  };

  JsonObject ingest;
  common(&ingest);
  ingest.Add("operation", std::string("ingest-batch"));
  latency(&ingest, r.ingest_batch_latency);
  ingest.Add("ingested_vertices", r.ingested_vertices);
  ingest.Add("vertices_per_second", r.vertices_per_second);
  rows->push_back(std::move(ingest));

  JsonObject locate;
  common(&locate);
  locate.Add("operation", std::string("locate"));
  latency(&locate, r.locate_latency);
  rows->push_back(std::move(locate));

  JsonObject touches;
  common(&touches);
  touches.Add("operation", std::string("touches"));
  latency(&touches, r.touches_latency);
  rows->push_back(std::move(touches));
  return true;
}

// In-memory edge-partitioning rows: per graph family, HDRF and DBH at
// lambda in {1.0, 4.0} (DBH ignores lambda; the full matrix keeps rows
// regular so validators can compare the two at equal settings), plus one
// budgeted two-pass HDRF restream row per family. Replication factor and
// balance are the §vertex-cut quality axes; edges/s the throughput axis.
bool RunEdgePartitionRows(const EdgeCutConfig& cfg, uint32_t threads,
                          std::vector<JsonObject>* rows) {
  for (const GraphKind kind : cfg.kinds) {
    Rng rng(cfg.seed + 2);
    const LabeledGraph g = MakeGraph(kind, cfg.n, cfg.avg_degree,
                                     LabelConfig{4, 0.3}, rng);
    const GraphStream stream = MakeStream(g, StreamOrder::kRandom, rng);

    struct Config {
      const char* name;
      double lambda;
      uint32_t passes;
    };
    const std::vector<Config> configs = {
        {"hdrf", 1.0, 1}, {"hdrf", 4.0, 1}, {"dbh", 1.0, 1},
        {"dbh", 4.0, 1},  {"hdrf", 1.0, 2},
    };
    for (const Config& config : configs) {
      EdgePartitionerOptions eopts;
      eopts.k = cfg.k;
      eopts.lambda = config.lambda;
      eopts.num_edges_hint = g.NumEdges();
      eopts.num_vertices_hint = g.NumVertices();
      eopts.seed = cfg.seed;
      auto partitioner = MakeEdgePartitioner(config.name, eopts);
      if (!partitioner.ok()) {
        std::cerr << "run_benchmarks: edge partitioner: "
                  << partitioner.status().ToString() << "\n";
        return false;
      }

      StreamCursor cursor(stream);
      EdgeRestreamOptions ropts;
      ropts.num_passes = config.passes;
      ropts.max_migration_fraction = 0.25;
      EdgeRestreamer restreamer(&cursor, ropts);
      const WallTimer timer;
      auto run = restreamer.Run(partitioner->get());
      const double seconds = timer.ElapsedSeconds();
      if (!run.ok()) {
        std::cerr << "run_benchmarks: edge partition: "
                  << run.status().ToString() << "\n";
        return false;
      }
      const EdgePartitionerStats& stats = (*partitioner)->stats();
      if (stats.assign_errors != 0 ||
          stats.edges_assigned != g.NumEdges()) {
        std::cerr << "run_benchmarks: edge partition contract violated ("
                  << config.name << ")\n";
        return false;
      }

      JsonObject row;
      row.Add("tier", std::string("in-memory"));
      row.Add("graph", GraphKindName(kind));
      row.Add("partitioner", std::string(config.name));
      row.Add("lambda", config.lambda);
      row.Add("k", static_cast<uint64_t>(cfg.k));
      row.Add("restream_passes", static_cast<uint64_t>(config.passes));
      row.Add("num_vertices", static_cast<uint64_t>(g.NumVertices()));
      row.Add("num_edges", static_cast<uint64_t>(g.NumEdges()));
      row.Add("replication_factor", run->replication_factor);
      row.Add("balance", run->balance);
      row.Add("seconds", seconds);
      row.Add("edges_per_second",
              seconds > 0 ? static_cast<double>(stats.edges_assigned) *
                                static_cast<double>(config.passes) / seconds
                          : 0.0);
      if (config.passes > 1) {
        row.Add("moved_fraction", run->passes.back().moved_fraction);
        row.Add("best_replication_factor",
                run->passes.back().best_replication_factor);
      }
      row.Add("overflow_fallbacks", stats.overflow_fallbacks);
      row.Add("cap_relaxations", stats.cap_relaxations);
      row.Add("assign_errors", stats.assign_errors);
      row.Add("peak_rss_bytes", PeakRssBytes());
      rows->push_back(std::move(row));
    }

    // Sharded restream sweep: HDRF, five budgeted passes per shard count
    // in {1, 2, ..., threads}, all against one serial reference run. The
    // 1-shard row must be placement-identical to the serial engine (the
    // sweep fails otherwise); multi-shard rows report the share-nothing
    // critical path and two speedups against the serial engine: whole-run,
    // and restream-only (passes >= 2 — pass one streams cold and serially
    // in both schedules, so it only dilutes the sharding signal).
    EdgePartitionerOptions sopts;
    sopts.k = cfg.k;
    sopts.num_edges_hint = g.NumEdges();
    sopts.num_vertices_hint = g.NumVertices();
    sopts.seed = cfg.seed;
    EdgeRestreamOptions ropts;
    ropts.num_passes = 5;
    ropts.max_migration_fraction = 0.25;

    auto serial_part = MakeEdgePartitioner("hdrf", sopts);
    if (!serial_part.ok()) return false;
    StreamCursor serial_cursor(stream);
    EdgeRestreamer serial_restreamer(&serial_cursor, ropts);
    const WallTimer serial_timer;
    auto serial_run = serial_restreamer.Run(serial_part->get());
    const double serial_seconds = serial_timer.ElapsedSeconds();
    if (!serial_run.ok()) {
      std::cerr << "run_benchmarks: sharded edge restream serial reference: "
                << serial_run.status().ToString() << "\n";
      return false;
    }
    double serial_restream_seconds = 0.0;
    for (const EdgeRestreamPassStats& pass : serial_run->passes) {
      if (pass.pass > 1) serial_restream_seconds += pass.seconds;
    }

    std::vector<uint32_t> shard_counts;
    for (uint32_t s = 1; s <= threads; s *= 2) shard_counts.push_back(s);
    for (const uint32_t num_shards : shard_counts) {
      auto partitioner = MakeEdgePartitioner("hdrf", sopts);
      if (!partitioner.ok()) return false;
      StreamCursor cursor(stream);
      EdgeRestreamer restreamer(&cursor, ropts);
      const WallTimer timer;
      auto run = restreamer.RunSharded(partitioner->get(), num_shards);
      const double seconds = timer.ElapsedSeconds();
      if (!run.ok()) {
        std::cerr << "run_benchmarks: sharded edge restream: "
                  << run.status().ToString() << "\n";
        return false;
      }
      double critical_path = 0.0;
      double restream_critical_path = 0.0;
      for (const EdgeRestreamPassStats& pass : run->passes) {
        const double pass_critical = pass.critical_path_seconds > 0.0
                                         ? pass.critical_path_seconds
                                         : pass.seconds;
        critical_path += pass_critical;
        if (pass.pass > 1) restream_critical_path += pass_critical;
        if (pass.cap_relaxations != 0 || pass.assign_errors != 0) {
          std::cerr << "run_benchmarks: sharded edge restream invariant "
                       "violated (shards="
                    << num_shards << ", pass=" << pass.pass
                    << ": relaxations=" << pass.cap_relaxations
                    << ", errors=" << pass.assign_errors << ")\n";
          return false;
        }
      }
      const bool serial_equivalent =
          run->placements == serial_run->placements;
      if (num_shards == 1 && !serial_equivalent) {
        std::cerr << "run_benchmarks: 1-shard edge restream diverged from "
                     "the serial EdgeRestreamer::Run placements\n";
        return false;
      }

      JsonObject row;
      row.Add("tier", std::string("in-memory"));
      row.Add("graph", GraphKindName(kind));
      row.Add("partitioner", std::string("hdrf"));
      row.Add("lambda", sopts.lambda);
      row.Add("k", static_cast<uint64_t>(cfg.k));
      row.Add("restream_passes", static_cast<uint64_t>(ropts.num_passes));
      row.Add("shards", static_cast<uint64_t>(num_shards));
      row.Add("num_vertices", static_cast<uint64_t>(g.NumVertices()));
      row.Add("num_edges", static_cast<uint64_t>(g.NumEdges()));
      row.Add("replication_factor", run->replication_factor);
      row.Add("balance", run->balance);
      row.Add("seconds", seconds);
      row.Add("edges_per_second",
              seconds > 0
                  ? static_cast<double>(g.NumEdges()) *
                        static_cast<double>(ropts.num_passes) / seconds
                  : 0.0);
      row.Add("moved_fraction", run->passes.back().moved_fraction);
      row.Add("best_replication_factor",
              run->passes.back().best_replication_factor);
      row.Add("critical_path_seconds", critical_path);
      row.Add("serial_seconds", serial_seconds);
      row.Add("speedup_vs_serial",
              critical_path > 0.0 ? serial_seconds / critical_path : 0.0);
      row.Add("restream_critical_path_seconds", restream_critical_path);
      row.Add("serial_restream_seconds", serial_restream_seconds);
      row.Add("restream_speedup_vs_serial",
              restream_critical_path > 0.0
                  ? serial_restream_seconds / restream_critical_path
                  : 0.0);
      const EdgePartitionerStats& stats = (*partitioner)->stats();
      row.Add("overflow_fallbacks", stats.overflow_fallbacks);
      row.Add("cap_relaxations", stats.cap_relaxations);
      row.Add("assign_errors", stats.assign_errors);
      // Only the 1-shard row carries the bit-equivalence verdict — it is
      // the only shard count the check runs on (multi-shard placements
      // legitimately differ from the serial engine's).
      if (num_shards == 1) {
        row.AddRaw("serial_equivalent", serial_equivalent ? "true" : "false");
      }
      row.Add("peak_rss_bytes", PeakRssBytes());
      rows->push_back(std::move(row));
    }
  }
  return true;
}

bool RunEdgeCutSection(const EdgeCutConfig& cfg, const LargeConfig& large_cfg,
                       const std::string& mode, uint32_t threads,
                       const std::string& path) {
  // The large tier goes first: its O(V) peak-RSS assertion is against the
  // process high-water mark, which the in-memory sections below would
  // otherwise raise (see RunLargeSection).
  std::vector<JsonObject> large_rows;
  std::vector<JsonObject> edge_partition_rows;
  if (!RunLargeSection(large_cfg, &large_rows, &edge_partition_rows)) {
    return false;
  }

  WorkloadGenOptions wopts;
  wopts.num_queries = 3;
  Workload workload = PathWorkload(wopts);

  std::vector<JsonObject> rows;
  for (const GraphKind kind : cfg.kinds) {
    Rng rng(cfg.seed);
    LabeledGraph g = MakeGraph(kind, cfg.n, cfg.avg_degree,
                               LabelConfig{4, 0.3}, rng);
    const GraphStream stream = MakeStream(g, StreamOrder::kRandom, rng);

    PartitionerOptions popts;
    popts.k = cfg.k;
    popts.num_vertices_hint = g.NumVertices();
    popts.num_edges_hint = g.NumEdges();

    PartitionerSet set = MakeStandardSet(popts, workload, 0.3);
    std::vector<RunResult> results;
    for (StreamingPartitioner* p : set.All()) {
      results.push_back(RunStreaming(p, g, stream, workload));
    }
    results.push_back(
        RunOffline(g, workload, cfg.k, /*slack=*/1.1, /*seed=*/7));

    for (const RunResult& r : results) {
      JsonObject row;
      row.Add("graph", GraphKindName(kind));
      row.Add("partitioner", r.partitioner);
      row.Add("edge_cut_fraction", r.cut_fraction);
      row.Add("balance", r.balance);
      row.Add("seconds", r.seconds);
      row.Add("peak_rss_bytes", PeakRssBytes());
      const double vps =
          r.seconds > 0 ? static_cast<double>(r.num_vertices) / r.seconds : 0;
      row.Add("vertices_per_second", vps);
      row.Add("num_vertices", static_cast<uint64_t>(r.num_vertices));
      row.Add("num_edges", static_cast<uint64_t>(r.num_edges));
      rows.push_back(std::move(row));
    }
  }
  if (rows.empty()) {
    std::cerr << "run_benchmarks: edge-cut section produced no rows\n";
    return false;
  }

  std::vector<JsonObject> restream_rows;
  if (!RunRestreamRows(cfg, workload, &restream_rows)) return false;

  std::vector<JsonObject> parallel_rows;
  if (!RunParallelRestreamRows(cfg, workload, threads, &parallel_rows)) {
    return false;
  }

  std::vector<JsonObject> drift_rows;
  if (!RunDriftRows(mode == "fast", &drift_rows)) return false;

  std::vector<JsonObject> serving_rows;
  if (!RunServingRows(mode == "fast", &serving_rows)) return false;

  if (!RunEdgePartitionRows(cfg, threads, &edge_partition_rows)) {
    return false;
  }

  JsonObject config;
  config.Add("n", static_cast<uint64_t>(cfg.n));
  config.Add("k", static_cast<uint64_t>(cfg.k));
  config.Add("avg_degree", static_cast<uint64_t>(cfg.avg_degree));
  config.Add("seed", cfg.seed);
  config.Add("threads", static_cast<uint64_t>(threads));

  JsonObject root;
  root.Add("schema", std::string("loom-bench-edge-cut-v8"));
  root.Add("mode", mode);
  root.AddRaw("config", config.Render(2));
  root.AddRaw("large", RenderArray(large_rows, 2));
  root.AddRaw("results", RenderArray(rows, 2));
  root.AddRaw("restream", RenderArray(restream_rows, 2));
  root.AddRaw("parallel_restream", RenderArray(parallel_rows, 2));
  root.AddRaw("drift", RenderArray(drift_rows, 2));
  root.AddRaw("serving", RenderArray(serving_rows, 2));
  root.AddRaw("edge_partition", RenderArray(edge_partition_rows, 2));
  return WriteFile(path, root.Render(0));
}

// --------------------------------------------------------------------- main

int Main(int argc, char** argv) {
  bool fast = true;
  std::string out_dir = ".";
  uint32_t threads = 4;
  uint64_t large_n = 0;  // 0 = mode default
  uint32_t large_degree = 10;
  std::string large_file;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--fast") {
      fast = true;
    } else if (arg == "--full") {
      fast = false;
    } else if (arg == "--out" && i + 1 < argc) {
      out_dir = argv[++i];
    } else if (arg == "--threads" && i + 1 < argc) {
      const int parsed = std::atoi(argv[++i]);
      threads = parsed < 1 ? 1 : static_cast<uint32_t>(parsed);
    } else if (arg == "--large-n" && i + 1 < argc) {
      large_n = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--large-degree" && i + 1 < argc) {
      const int parsed = std::atoi(argv[++i]);
      large_degree = parsed < 1 ? 1 : static_cast<uint32_t>(parsed);
    } else if (arg == "--large-file" && i + 1 < argc) {
      large_file = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "Usage: run_benchmarks [--fast|--full] [--out DIR] "
                   "[--threads N] [--large-n N] [--large-degree M] "
                   "[--large-file PATH]\n";
      return 0;
    } else {
      std::cerr << "run_benchmarks: unknown argument '" << arg << "'\n";
      return 2;
    }
  }

  EdgeCutConfig cfg;
  if (fast) {
    cfg.n = 4000;
    cfg.kinds = {GraphKind::kErdosRenyi, GraphKind::kBarabasiAlbert};
  } else {
    cfg.n = 30000;
    cfg.kinds = {GraphKind::kErdosRenyi, GraphKind::kBarabasiAlbert,
                 GraphKind::kWattsStrogatz, GraphKind::kRMat};
  }
  const std::string mode = fast ? "fast" : "full";

  // Large tier scale: the fast default keeps the section to ~a second while
  // still exercising the whole file-backed path; --full runs the
  // LiveJournal-class configuration from the acceptance criteria.
  LargeConfig large_cfg;
  large_cfg.n = large_n != 0 ? large_n : (fast ? 60000 : 5000000);
  large_cfg.degree = large_degree;
  large_cfg.file = large_file;
  large_cfg.work_dir = out_dir;

  const std::string edge_cut_path = out_dir + "/BENCH_edge_cut.json";
  const std::string micro_path = out_dir + "/BENCH_micro.json";

  // Sections write to .tmp files which are renamed into place only once
  // everything succeeded, so a half-failed run neither leaves partial
  // output nor clobbers an existing baseline.
  const std::string edge_cut_tmp = edge_cut_path + ".tmp";
  const std::string micro_tmp = micro_path + ".tmp";
  const auto fail = [&] {
    std::remove(edge_cut_tmp.c_str());
    std::remove(micro_tmp.c_str());
    return 1;
  };

  std::cout << "run_benchmarks: edge-cut section (" << mode << ") ...\n";
  if (!RunEdgeCutSection(cfg, large_cfg, mode, threads, edge_cut_tmp)) {
    return fail();
  }

  std::cout << "run_benchmarks: micro section (" << mode << ") ...\n";
  const std::vector<MicroResult> micro = RunMicroLoops(fast);

  std::cout << "run_benchmarks: throughput section (" << mode << ") ...\n";
  const std::vector<ThroughputRow> throughput = RunThroughput(fast);

  if (!WriteMicroReport(micro_tmp, mode, micro, throughput)) return fail();

  if (std::rename(edge_cut_tmp.c_str(), edge_cut_path.c_str()) != 0) {
    std::cerr << "run_benchmarks: failed to move outputs into place\n";
    return fail();
  }
  if (std::rename(micro_tmp.c_str(), micro_path.c_str()) != 0) {
    // The pair must never be mixed: the first file is already installed, so
    // remove it — a missing baseline is detectable, mixed vintages are not.
    std::cerr << "run_benchmarks: failed to move outputs into place\n";
    std::remove(edge_cut_path.c_str());
    return fail();
  }
  std::cout << "  wrote " << edge_cut_path << "\n";
  std::cout << "  wrote " << micro_path << "\n";
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace loom

int main(int argc, char** argv) { return loom::bench::Main(argc, argv); }
