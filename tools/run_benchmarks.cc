// run_benchmarks: machine-readable perf baseline driver.
//
// Runs a fast subset of the bench/ experiments (edge-cut quality across the
// standard partitioner set, plus self-timed microbenchmarks of the hot
// paths) and writes BENCH_edge_cut.json and BENCH_micro.json so successive
// PRs can regress against a recorded trajectory.
//
// Usage:
//   run_benchmarks [--fast] [--full] [--out DIR]
//
// --fast (default) keeps total runtime to a few seconds; --full runs the
// paper-scale configuration. Exit status is non-zero on any failure, and
// the JSON files are only left behind when every section succeeded.

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/timer.h"
#include "harness.h"
#include "motif/canonical.h"
#include "motif/signature.h"
#include "partition/hash_partitioner.h"
#include "partition/ldg_partitioner.h"
#include "restream/restreamer.h"
#include "stream/window.h"
#include "workload/query_builders.h"

namespace loom {
namespace bench {
namespace {

// --------------------------------------------------------------------- JSON
// Minimal emitter: enough for flat objects and arrays of flat objects.

std::string JsonEscape(const std::string& s) {
  std::string out;
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (c == '\n') {
      out += "\\n";
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out.push_back(c);
    }
  }
  return out;
}

std::string JsonNumber(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

struct JsonObject {
  std::vector<std::string> fields;

  void Add(const std::string& key, const std::string& value) {
    fields.push_back("\"" + JsonEscape(key) + "\": \"" + JsonEscape(value) +
                     "\"");
  }
  void Add(const std::string& key, double value) {
    fields.push_back("\"" + JsonEscape(key) + "\": " + JsonNumber(value));
  }
  void Add(const std::string& key, uint64_t value) {
    fields.push_back("\"" + JsonEscape(key) +
                     "\": " + std::to_string(value));
  }
  void AddRaw(const std::string& key, const std::string& raw) {
    fields.push_back("\"" + JsonEscape(key) + "\": " + raw);
  }

  std::string Render(int indent) const {
    const std::string pad(indent, ' ');
    std::string out = "{\n";
    for (size_t i = 0; i < fields.size(); ++i) {
      out += pad + "  " + fields[i];
      if (i + 1 < fields.size()) out += ",";
      out += "\n";
    }
    out += pad + "}";
    return out;
  }
};

std::string RenderArray(const std::vector<JsonObject>& items, int indent) {
  const std::string pad(indent, ' ');
  std::string out = "[\n";
  for (size_t i = 0; i < items.size(); ++i) {
    out += pad + "  " + items[i].Render(indent + 2);
    if (i + 1 < items.size()) out += ",";
    out += "\n";
  }
  out += pad + "]";
  return out;
}

bool WriteFile(const std::string& path, const std::string& content) {
  std::ofstream f(path, std::ios::trunc);
  if (!f) {
    std::cerr << "run_benchmarks: cannot open " << path << " for writing\n";
    return false;
  }
  f << content << "\n";
  return f.good();
}

// ----------------------------------------------------------------- edge cut

struct EdgeCutConfig {
  uint32_t n = 4000;
  uint32_t k = 8;
  uint32_t avg_degree = 8;
  uint64_t seed = 2024;
  std::vector<GraphKind> kinds;
};

// Multi-pass restreaming rows: for ldg, fennel and loom, three gain-ordered
// passes per graph family, each row one pass with its raw cut, the anytime
// best cut, balance, migration cost and overflow counters. Later PRs (and
// the restream ctest suite) regress against the monotone best-cut contract.
bool RunRestreamRows(const EdgeCutConfig& cfg, const Workload& workload,
                     std::vector<JsonObject>* rows) {
  for (const GraphKind kind : cfg.kinds) {
    Rng rng(cfg.seed + 1);
    LabeledGraph g = MakeGraph(kind, cfg.n, cfg.avg_degree,
                               LabelConfig{4, 0.3}, rng);
    const GraphStream stream = MakeStream(g, StreamOrder::kRandom, rng);

    PartitionerOptions popts;
    popts.k = cfg.k;
    popts.num_vertices_hint = g.NumVertices();
    popts.num_edges_hint = g.NumEdges();

    PartitionerSet set = MakeStandardSet(popts, workload, 0.3);
    RestreamOptions ropts;
    ropts.num_passes = 3;
    ropts.order = RestreamOrder::kGain;
    const Restreamer restreamer(stream, ropts);
    for (StreamingPartitioner* p : set.All()) {
      const std::string name = p->Name();
      if (name != "ldg" && name != "fennel" && name != "loom") continue;
      const RestreamResult r = restreamer.Run(p);
      for (const RestreamPassStats& s : r.passes) {
        if (s.forced_placements != 0) {
          std::cerr << "run_benchmarks: restream pass forced placements past "
                       "capacity (" << name << ")\n";
          return false;
        }
        JsonObject row;
        row.Add("graph", GraphKindName(kind));
        row.Add("partitioner", name);
        row.Add("pass", static_cast<uint64_t>(s.pass));
        row.Add("ordering", RestreamOrderName(ropts.order));
        row.Add("edge_cut_fraction", s.edge_cut_fraction);
        row.Add("best_edge_cut_fraction", s.best_edge_cut_fraction);
        row.Add("balance", s.balance);
        row.Add("migration_fraction", s.migration_fraction);
        row.Add("overflow_fallbacks", s.overflow_fallbacks);
        row.Add("seconds", s.seconds);
        rows->push_back(std::move(row));
      }
    }
  }
  if (rows->empty()) {
    std::cerr << "run_benchmarks: restream section produced no rows\n";
    return false;
  }
  return true;
}

bool RunEdgeCutSection(const EdgeCutConfig& cfg, const std::string& mode,
                       const std::string& path) {
  WorkloadGenOptions wopts;
  wopts.num_queries = 3;
  Workload workload = PathWorkload(wopts);

  std::vector<JsonObject> rows;
  for (const GraphKind kind : cfg.kinds) {
    Rng rng(cfg.seed);
    LabeledGraph g = MakeGraph(kind, cfg.n, cfg.avg_degree,
                               LabelConfig{4, 0.3}, rng);
    const GraphStream stream = MakeStream(g, StreamOrder::kRandom, rng);

    PartitionerOptions popts;
    popts.k = cfg.k;
    popts.num_vertices_hint = g.NumVertices();
    popts.num_edges_hint = g.NumEdges();

    PartitionerSet set = MakeStandardSet(popts, workload, 0.3);
    std::vector<RunResult> results;
    for (StreamingPartitioner* p : set.All()) {
      results.push_back(RunStreaming(p, g, stream, workload));
    }
    results.push_back(
        RunOffline(g, workload, cfg.k, /*slack=*/1.1, /*seed=*/7));

    for (const RunResult& r : results) {
      JsonObject row;
      row.Add("graph", GraphKindName(kind));
      row.Add("partitioner", r.partitioner);
      row.Add("edge_cut_fraction", r.cut_fraction);
      row.Add("balance", r.balance);
      row.Add("seconds", r.seconds);
      const double vps =
          r.seconds > 0 ? static_cast<double>(r.num_vertices) / r.seconds : 0;
      row.Add("vertices_per_second", vps);
      row.Add("num_vertices", static_cast<uint64_t>(r.num_vertices));
      row.Add("num_edges", static_cast<uint64_t>(r.num_edges));
      rows.push_back(std::move(row));
    }
  }
  if (rows.empty()) {
    std::cerr << "run_benchmarks: edge-cut section produced no rows\n";
    return false;
  }

  std::vector<JsonObject> restream_rows;
  if (!RunRestreamRows(cfg, workload, &restream_rows)) return false;

  JsonObject config;
  config.Add("n", static_cast<uint64_t>(cfg.n));
  config.Add("k", static_cast<uint64_t>(cfg.k));
  config.Add("avg_degree", static_cast<uint64_t>(cfg.avg_degree));
  config.Add("seed", cfg.seed);

  JsonObject root;
  root.Add("schema", std::string("loom-bench-edge-cut-v2"));
  root.Add("mode", mode);
  root.AddRaw("config", config.Render(2));
  root.AddRaw("results", RenderArray(rows, 2));
  root.AddRaw("restream", RenderArray(restream_rows, 2));
  return WriteFile(path, root.Render(0));
}

// -------------------------------------------------------------------- micro
// Self-timed hot-path loops mirroring bench_micro.cc, without the
// google-benchmark dependency so the driver runs everywhere.

struct MicroResult {
  std::string name;
  uint64_t iterations = 0;
  uint64_t items = 0;  // work units processed (for throughput)
  double seconds = 0.0;
};

template <typename Fn>
MicroResult TimeLoop(const std::string& name, uint64_t iterations,
                     uint64_t items_per_iteration, Fn&& fn) {
  MicroResult r;
  r.name = name;
  r.iterations = iterations;
  r.items = iterations * items_per_iteration;
  WallTimer timer;
  for (uint64_t i = 0; i < iterations; ++i) fn();
  r.seconds = timer.ElapsedSeconds();
  return r;
}

std::vector<MicroResult> RunMicroLoops(bool fast) {
  std::vector<MicroResult> out;

  {
    const SignatureScheme scheme(8);
    GraphSignature sig;
    Label a = 0;
    out.push_back(TimeLoop("signature_multiply_edge",
                           fast ? 200000 : 2000000, 1, [&] {
                             scheme.MultiplyEdge(&sig, a, (a + 3) % 8);
                             a = (a + 1) % 8;
                             if (sig.NumFactors() > 64) sig = GraphSignature();
                           }));
  }

  {
    const SignatureScheme scheme(4);
    const GraphSignature small = scheme.SignatureOf(PaperQ2());
    const GraphSignature big = scheme.SignatureOf(PaperFigure1Graph());
    volatile bool sink = false;
    out.push_back(TimeLoop("signature_divides", fast ? 100000 : 1000000, 1,
                           [&] { sink = small.Divides(big); }));
    (void)sink;
  }

  {
    const LabeledGraph q = PaperQ1();
    out.push_back(TimeLoop("canonical_form_small_motif", fast ? 5000 : 50000,
                           1, [&] {
                             auto c = CanonicalForm(q);
                             (void)c;
                           }));
  }

  {
    const Workload w = PaperFigure1Workload();
    auto trie = BuildTrie(w);
    const GraphSignature sig = (*trie)->scheme().SignatureOf(PaperQ2());
    out.push_back(TimeLoop("trie_signature_lookup", fast ? 100000 : 1000000,
                           1, [&] {
                             auto hits = (*trie)->FindBySignature(sig);
                             (void)hits;
                           }));
  }

  {
    const uint32_t n = fast ? 5000 : 20000;
    Rng rng(1);
    const LabeledGraph g = BarabasiAlbert(n, 4, LabelConfig{4, 0.0}, rng);
    const GraphStream stream = MakeStream(g, StreamOrder::kRandom, rng);
    const uint64_t reps = fast ? 3 : 10;
    out.push_back(TimeLoop("ldg_placement", reps, g.NumVertices(), [&] {
      PartitionerOptions o;
      o.k = 16;
      o.num_vertices_hint = g.NumVertices();
      LdgPartitioner p(o);
      p.Run(stream);
    }));
    out.push_back(TimeLoop("hash_placement", reps, g.NumVertices(), [&] {
      PartitionerOptions o;
      o.k = 16;
      o.num_vertices_hint = g.NumVertices();
      HashPartitioner p(o);
      p.Run(stream);
    }));
  }

  {
    const uint64_t churn = 4096;
    out.push_back(TimeLoop("window_churn", fast ? 50 : 500, churn, [&] {
      StreamWindow w(256);
      for (VertexId v = 0; v < churn; ++v) {
        if (w.Full()) w.PopOldest();
        w.Push(v, v % 4,
               v > 0 ? std::vector<VertexId>{v - 1} : std::vector<VertexId>{});
      }
    }));
  }

  return out;
}

bool RunMicroSection(bool fast, const std::string& mode,
                     const std::string& path) {
  const std::vector<MicroResult> results = RunMicroLoops(fast);
  std::vector<JsonObject> rows;
  for (const MicroResult& r : results) {
    if (r.iterations == 0 || r.seconds < 0) {
      std::cerr << "run_benchmarks: micro loop " << r.name << " is invalid\n";
      return false;
    }
    JsonObject row;
    row.Add("name", r.name);
    row.Add("iterations", r.iterations);
    row.Add("seconds", r.seconds);
    const double per_op =
        r.seconds / static_cast<double>(r.iterations) * 1e9;
    row.Add("ns_per_op", per_op);
    const double ops =
        r.seconds > 0 ? static_cast<double>(r.items) / r.seconds : 0;
    row.Add("ops_per_second", ops);
    rows.push_back(std::move(row));
  }
  if (rows.empty()) {
    std::cerr << "run_benchmarks: micro section produced no rows\n";
    return false;
  }

  JsonObject root;
  root.Add("schema", std::string("loom-bench-micro-v1"));
  root.Add("mode", mode);
  root.AddRaw("results", RenderArray(rows, 2));
  return WriteFile(path, root.Render(0));
}

// --------------------------------------------------------------------- main

int Main(int argc, char** argv) {
  bool fast = true;
  std::string out_dir = ".";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--fast") {
      fast = true;
    } else if (arg == "--full") {
      fast = false;
    } else if (arg == "--out" && i + 1 < argc) {
      out_dir = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "Usage: run_benchmarks [--fast|--full] [--out DIR]\n";
      return 0;
    } else {
      std::cerr << "run_benchmarks: unknown argument '" << arg << "'\n";
      return 2;
    }
  }

  EdgeCutConfig cfg;
  if (fast) {
    cfg.n = 4000;
    cfg.kinds = {GraphKind::kErdosRenyi, GraphKind::kBarabasiAlbert};
  } else {
    cfg.n = 30000;
    cfg.kinds = {GraphKind::kErdosRenyi, GraphKind::kBarabasiAlbert,
                 GraphKind::kWattsStrogatz, GraphKind::kRMat};
  }
  const std::string mode = fast ? "fast" : "full";

  const std::string edge_cut_path = out_dir + "/BENCH_edge_cut.json";
  const std::string micro_path = out_dir + "/BENCH_micro.json";

  // Sections write to .tmp files which are renamed into place only once
  // everything succeeded, so a half-failed run neither leaves partial
  // output nor clobbers an existing baseline.
  const std::string edge_cut_tmp = edge_cut_path + ".tmp";
  const std::string micro_tmp = micro_path + ".tmp";
  const auto fail = [&] {
    std::remove(edge_cut_tmp.c_str());
    std::remove(micro_tmp.c_str());
    return 1;
  };

  std::cout << "run_benchmarks: edge-cut section (" << mode << ") ...\n";
  if (!RunEdgeCutSection(cfg, mode, edge_cut_tmp)) return fail();

  std::cout << "run_benchmarks: micro section (" << mode << ") ...\n";
  if (!RunMicroSection(fast, mode, micro_tmp)) return fail();

  if (std::rename(edge_cut_tmp.c_str(), edge_cut_path.c_str()) != 0) {
    std::cerr << "run_benchmarks: failed to move outputs into place\n";
    return fail();
  }
  if (std::rename(micro_tmp.c_str(), micro_path.c_str()) != 0) {
    // The pair must never be mixed: the first file is already installed, so
    // remove it — a missing baseline is detectable, mixed vintages are not.
    std::cerr << "run_benchmarks: failed to move outputs into place\n";
    std::remove(edge_cut_path.c_str());
    return fail();
  }
  std::cout << "  wrote " << edge_cut_path << "\n";
  std::cout << "  wrote " << micro_path << "\n";
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace loom

int main(int argc, char** argv) { return loom::bench::Main(argc, argv); }
